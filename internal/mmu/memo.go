package mmu

// Per-page miss-outcome memoization and the fused 2D miss path.
//
// The memo caches, per (ASID, 4K VPN), the outcome of a fully resolved
// L1 miss in the unsegmented virtualized configuration. Every miss in
// that configuration takes fusedWalk2D — a straight-line specialization
// of probeL2 + walk2D with the segment branches, interface dispatch,
// sampler bookkeeping, and slice-based reference plumbing compiled out.
// Crucially the fused path RE-EXECUTES every modeled micro-operation
// (L2/PWC/nested-PWC/PTE-cache probes, LRU refreshes, insertions,
// accessed-bit stores) in exactly the per-event order, so it is stat-
// and state-exact for ALL inputs under the gate — a memo entry, stale
// or fresh, can never influence a simulated outcome.
//
// That same property bounds what the memo can be FOR: a hit licenses no
// skippable work, so consulting it in production is pure host-side
// overhead (measured ~10% of the GUPS hot path — the probe is one extra
// cache line of traffic per miss against a table the workload thrashes).
// The memo therefore engages only under SetMemoCheck, where it serves
// as a differential-testing oracle: each fused replay's outcome is
// cross-checked against the recorded one, and any invalidation bug in
// the epoch scheme surfaces as a panic rather than silent staleness.
// The epoch scheme below protects the freshness of the *recorded*
// outcome, not simulation correctness.
//
// Invalidation: every register write, flush, invalidation, ASID/context
// switch, and fault service bumps memoEpoch (see bumpEpoch callers in
// mmu.go); entries carry the epoch at record time and mismatched
// entries are dead. The escape filters are mutated directly by the
// OS/VMM rather than through MMU methods, so their mutation counters
// (escape.Filter.Gen) are mirrored in memoEscGen and a drift detected
// on the miss path bumps the epoch too.

import (
	"fmt"

	"vdirect/internal/addr"
	"vdirect/internal/telemetry/walkprof"
)

// Memo geometry: 2-way set-associative over the low VPN bits. A set's
// two 32-byte entries fill exactly one 64-byte host cache line, so a
// probe (and a record) costs one line of traffic. 16K entries (512KB)
// cover most of the dense cells' page working sets (gups touches ~16K
// distinct pages). The victim choice on a full set is host-side policy
// only — it is unobservable in the simulation — so a trivial VPN-bit
// pick suffices.
const (
	memoSets    = 8192
	memoWays    = 2
	memoSetBits = 13
)

// memoEntry records one resolved miss in 32 bytes. key packs a valid
// bit, the ASID, and the VPN exactly like the TLB tag layout; epoch
// must equal MMU.memoEpoch for the entry to be live. hpa and aux
// (cycles, §VII class, reference count) are the recorded outcome, read
// only by the memoCheck cross-check and MemoStats consumers — the
// fused replay never reads them.
type memoEntry struct {
	key   uint64
	epoch uint64
	hpa   uint64
	// aux packs cycles (bits 31:0), refs (47:32), class (55:48).
	aux uint64
}

func memoAux(cycles uint64, refs uint32, class walkprof.MissClass) uint64 {
	return cycles&0xFFFFFFFF | uint64(refs&0xFFFF)<<32 | uint64(class)<<48
}

// memoVPNMax bounds the VPN field of the packed key (shared layout with
// the TLB tags: bits 45:0).
const memoVPNMax = uint64(1) << 46

func memoKey(asid uint16, vpn uint64) uint64 {
	return 1<<63 | uint64(asid)<<46 | vpn
}

// memoGate reports whether the active register configuration is the one
// the fused path specializes: unsegmented nested paging with the PWCs
// and nested TLB enabled, and no telemetry attached (the probe and
// sampler hook the general walk wrappers; with either installed every
// miss takes the general path so their observations are untouched).
// updateScheme derives the scheme from these same registers, so the
// gate passing implies scheme == schemeBaseVirtualized.
func (m *MMU) memoGate() bool {
	return m.virtualized && !m.flatNested &&
		!m.segs.Guest.Enabled() && !m.segs.VMM.Enabled() &&
		!m.cfg.DisablePWC && !m.cfg.DisableNestedTLB &&
		m.probe == nil && m.sampler == nil
}

// missResolve is the L1-miss entry point: the fused path when the
// configuration is fused-eligible, the scheme's general path otherwise.
// The memo itself is consulted inside fusedWalk2D, past the L2 probe:
// under the exact-replay doctrine a memo hit cannot skip any modeled
// work even on an L2 hit, so probing before the L2 would spend a cache
// line of host traffic on misses the L2 resolves anyway.
func (m *MMU) missResolve(gva uint64) (Result, *Fault) {
	if !m.memoGate() {
		return m.translateMiss(gva)
	}
	return m.fusedWalk2D(gva)
}

// memoLookup returns the live entry for (current ASID, vpn), or nil.
// The escape-filter generation check runs first: a drift means filter
// state changed since the last sync, so the whole memo is aged out.
func (m *MMU) memoLookup(vpn uint64) *memoEntry {
	if g := m.escV.Gen() + m.escG.Gen(); g != m.memoEscGen {
		m.memoEscGen = g
		m.bumpEpoch()
		return nil
	}
	if m.memo == nil || vpn >= memoVPNMax {
		return nil
	}
	key := memoKey(m.asid, vpn)
	set := (vpn & (memoSets - 1)) * memoWays
	for i := set; i < set+memoWays; i++ {
		if e := &m.memo[i]; e.key == key && e.epoch == m.memoEpoch {
			return e
		}
	}
	return nil
}

// memoRecord installs a resolved outcome, lazily allocating the table
// on the first recorded miss (native-only cells never pay for it).
func (m *MMU) memoRecord(vpn uint64, hpa, cycles uint64, refs uint32) {
	if m.memo == nil {
		m.memo = make([]memoEntry, memoSets*memoWays)
	}
	key := memoKey(m.asid, vpn)
	set := (vpn & (memoSets - 1)) * memoWays
	slot := &m.memo[set+(vpn>>memoSetBits&1)]
	for i := set; i < set+memoWays; i++ {
		if e := &m.memo[i]; e.key == key || e.epoch != m.memoEpoch {
			slot = e
			break
		}
	}
	*slot = memoEntry{
		key:   key,
		epoch: m.memoEpoch,
		hpa:   hpa,
		aux:   memoAux(cycles, refs, walkprof.ClassWalkNeither),
	}
}

// memoVerify cross-checks a completed fused walk against the recorded
// outcome: an epoch-valid entry for a page that still misses the L2
// must resolve to the same host frame (a remap without an intervening
// flush would be a TLB-coherence bug in the simulated OS/VMM, not a
// memo staleness case). Cycles and reference counts legitimately drift
// with PWC/PTE-cache state and are not asserted.
func (m *MMU) memoVerify(e *memoEntry, gva, hpa uint64) {
	if hpa>>addr.PageShift4K != e.hpa>>addr.PageShift4K {
		panic(fmt.Sprintf("mmu: memo check failed for gva %#x: fused hpa %#x, recorded %#x (epoch %d)",
			gva, hpa, e.hpa, m.memoEpoch))
	}
	if class := walkprof.MissClass(e.aux >> 48 & 0xFF); class != walkprof.ClassWalkNeither {
		panic(fmt.Sprintf("mmu: memo check failed for gva %#x: recorded class %v under fused gate",
			gva, class))
	}
}

// fusedWalk2D is the straight-line miss path for the gated
// configuration: L2 probe, guest walk with every table reference
// nested-translated, final nested translation, classification, TLB
// insertion. It mirrors probeL2 + walk2D/nestedWalk2D/walkGuestTable/
// nestedTranslate line for line with the branches the gate pins
// (segments disabled, PWCs and nested TLB enabled, probe and sampler
// nil) removed, and uses the fixed-array walkers when the walk caches
// are primed. Stat updates, probe orders, and insertion orders are
// identical to the general path's.
func (m *MMU) fusedWalk2D(gva uint64) (Result, *Fault) {
	// probeL2, inlined (sampler nil under the gate).
	var cycles uint64
	if hpa, hit := m.l2.LookupGuest(gva); hit {
		m.stats.L2Hits++
		cycles += m.cfg.L2HitCycles
		m.stats.WalkCycles += cycles
		m.l1.Insert(gva, hpa, addr.Page4K)
		return Result{HPA: hpa, Cycles: cycles, L2Hit: true}, nil
	}
	m.stats.L2Misses++
	cycles += m.cfg.L2HitCycles

	// walk2D wrapper (probe/sampler nil) collapses to the walk itself.
	m.stats.Walks++

	// Miss memo, engaged only under memoCheck: a hit is cross-checked
	// against the replayed outcome below, a miss records it. Placed past
	// the L2 probe so pages the L2 still covers never spend the line of
	// host cache traffic a probe costs. In production the memo stays
	// dormant — under exact replay a hit can skip nothing, so probing
	// would be pure host-side overhead (~10% of the GUPS hot path;
	// EXPERIMENTS.md quantifies it).
	vpn := gva >> addr.PageShift4K
	var memoHit *memoEntry
	if m.memoCheck {
		if memoHit = m.memoLookup(vpn); memoHit != nil {
			m.memoHits++
		} else {
			m.memoMisses++
		}
	}
	refs0 := m.stats.WalkMemRefs

	// Guest dimension. The PWC was always probed before the walk
	// (walkGuestTable); the walk-cache precheck interposed here touches
	// no modeled state (pagetable.Probe4K).
	skip := m.pwc.SkipLevel(gva)
	var gpa uint64
	var gsize addr.PageSize
	if fp, ok := m.gPT.Probe4K(gva); ok {
		pa, refs, nref := fp.Emit(gva, skip)
		n := uint64(0)
		for i := 0; i < nref; i++ {
			hpa, _, f := m.nestedResolveFast(refs[i], &cycles)
			if f != nil {
				m.stats.WalkMemRefs += n
				m.stats.WalkCycles += cycles
				return Result{}, f
			}
			n++
			cycles += m.ptc.Access(hpa)
		}
		m.stats.WalkMemRefs += n
		m.pwc.FillFrom(gva, skip, addr.LvlPT)
		gpa, gsize = pa, addr.Page4K
	} else {
		pa, size, ok, fault := m.walkGuestTableSkip(gva, &cycles, true, skip)
		if fault != nil {
			m.stats.WalkCycles += cycles
			return Result{}, fault
		}
		if !ok {
			m.stats.GuestFaults++
			m.stats.WalkCycles += cycles
			return Result{}, &Fault{Kind: FaultGuest, Addr: gva}
		}
		gpa, gsize = pa, size
	}

	// Second dimension for the final gPA.
	hpa, nsize, fault := m.nestedResolveFast(gpa, &cycles)
	if fault != nil {
		m.stats.WalkCycles += cycles
		return Result{}, fault
	}

	// classifyMiss with both coverages false.
	m.stats.MissNeither++
	m.walkClass = walkprof.ClassWalkNeither
	m.stats.WalkCycles += cycles
	m.insertComposite(gva, hpa, gsize, nsize)
	if memoHit != nil {
		if m.memoCheck {
			m.memoVerify(memoHit, gva, hpa)
		}
	} else if m.memoCheck && vpn < memoVPNMax {
		m.memoRecord(vpn, hpa, cycles, uint32(m.stats.WalkMemRefs-refs0))
	}
	return Result{HPA: hpa, Cycles: cycles}, nil
}

// nestedResolveFast is nestedTranslate with the VMM-segment branch
// compiled out (the gate pins it disabled) and the walk-cache fast path
// taken through the fixed-array walker. Probe order matches
// nestedTranslate exactly: the nested PWC is probed only once a
// fast-path success is guaranteed (a fault must not perturb its LRU
// state), which Probe4K's state-free precheck preserves.
func (m *MMU) nestedResolveFast(gpa uint64, cycles *uint64) (uint64, addr.PageSize, *Fault) {
	if hpa, hit := m.l2.LookupNested(gpa); hit {
		m.stats.NestedTLBHits++
		*cycles += m.cfg.NestedProbeCycles
		return hpa, addr.Page4K, nil
	}
	m.stats.NestedTLBMisses++
	m.stats.NestedWalks++
	if fp, ok := m.nPT.Probe4K(gpa); ok {
		skip := m.npwc.SkipLevel(gpa)
		hpa, refs, nref := fp.Emit(gpa, skip)
		m.stats.WalkMemRefs += uint64(nref)
		cyc := *cycles
		for i := 0; i < nref; i++ {
			cyc += m.ptc.Access(refs[i])
		}
		*cycles = cyc
		m.npwc.FillFrom(gpa, skip, addr.LvlPT)
		m.l2.InsertNested(gpa&^(addr.PageSize4K-1), hpa&^(addr.PageSize4K-1))
		return hpa, addr.Page4K, nil
	}
	// General nested walk: cold walk cache or a non-4K/absent leaf.
	m.nrefBuf = m.nrefBuf[:0]
	hpa, nsize, refs, ok := m.nPT.Walk(gpa, m.nrefBuf)
	m.nrefBuf = refs
	skip := 0
	if ok {
		skip = m.npwc.SkipLevel(gpa)
		if skip > len(refs)-1 {
			skip = len(refs) - 1
		}
	}
	refs = refs[skip:]
	if !ok {
		m.stats.NestedFaults++
		return 0, 0, &Fault{Kind: FaultNested, Addr: gpa}
	}
	m.stats.WalkMemRefs += uint64(len(refs))
	cyc := *cycles
	for _, ref := range refs {
		cyc += m.ptc.Access(ref.Addr)
	}
	*cycles = cyc
	m.npwc.FillFrom(gpa, skip, refs[len(refs)-1].Level)
	m.l2.InsertNested(gpa&^(addr.PageSize4K-1), hpa&^(addr.PageSize4K-1))
	return hpa, nsize, nil
}

// MemoStats reports the miss-memo's hit/miss counts (host-side
// instrumentation, not simulated state).
func (m *MMU) MemoStats() (hits, misses uint64) { return m.memoHits, m.memoMisses }

// SetMemoCheck engages the miss memo and its per-replay cross-check of
// fused outcomes against recorded entries (panics on divergence).
// Differential tests and the oracle harness run with it on; production
// cells leave it off, where the memo costs nothing.
func (m *MMU) SetMemoCheck(on bool) { m.memoCheck = on }
