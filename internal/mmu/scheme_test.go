package mmu

import (
	"testing"

	"vdirect/internal/addr"
	"vdirect/internal/pagetable"
	"vdirect/internal/segment"
	"vdirect/internal/trace"
)

func TestSchemeRegistryUnknownName(t *testing.T) {
	if _, err := SchemeByName("NoSuchScheme"); err == nil {
		t.Fatal("SchemeByName accepted an unregistered name")
	}
	if s, err := SchemeByName("FlatNested"); err != nil || s.Name() != ModeFlatNested {
		t.Fatalf("SchemeByName(FlatNested) = %v, %v", s, err)
	}
}

func TestSchemeRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering an existing scheme name did not panic")
		}
	}()
	RegisterScheme(nativeScheme{})
}

func TestSchemeNames(t *testing.T) {
	names := SchemeNames()
	want := map[string]bool{
		"Native": true, "DirectSegment": true, "BaseVirtualized": true,
		"DualDirect": true, "VMMDirect": true, "GuestDirect": true,
		"FlatNested": true,
	}
	if len(names) != len(want) {
		t.Fatalf("SchemeNames() = %v, want the %d known schemes", names, len(want))
	}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected scheme %q", n)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("SchemeNames() not sorted: %v", names)
		}
	}
	if ss := Schemes(); len(ss) != len(names) {
		t.Fatalf("Schemes() returned %d schemes", len(ss))
	}
}

// schemeFixture programs a fresh environment into one scheme and names
// the probe addresses the conformance checks drive through it.
type schemeFixture struct {
	build func(t *testing.T) *env
	// uncovered is a gVA mapped 4K by the guest page table, outside any
	// guest segment — it exercises the scheme's walk machine.
	uncovered uint64
	// covered is a gVA inside the guest segment (0: scheme has none).
	covered uint64
	// vmmCovers reports whether the fixture's VMM segment covers the
	// walk's guest physical addresses.
	vmmCovers bool
	// faultVA is an unmapped gVA outside all segments.
	faultVA uint64
}

// conformanceFixtures must cover exactly the registered schemes; the
// suite (and scripts/check.sh's exhaustiveness lint) fails when a
// newly registered scheme has no fixture here.
var conformanceFixtures = map[Mode]schemeFixture{
	ModeNative: {
		build: func(t *testing.T) *env {
			e := newEnv(t, 16, coldConfig())
			e.m.SetNestedPageTable(nil)
			e.mapGuest(t, 0x400000, 0x800000, 4)
			return e
		},
		uncovered: 0x400123,
		faultVA:   0xA00000,
	},
	ModeDirectSegment: {
		build: func(t *testing.T) *env {
			e := newEnv(t, 16, coldConfig())
			e.m.SetNestedPageTable(nil)
			e.m.SetGuestSegment(segment.NewRegisters(0x400000, 0x800000, 2<<20))
			e.mapGuest(t, 0x900000, 0x880000, 4)
			return e
		},
		uncovered: 0x900123,
		covered:   0x400123,
		faultVA:   0xA00000,
	},
	ModeBaseVirtualized: {
		build: func(t *testing.T) *env {
			e := newEnv(t, 16, coldConfig())
			e.mapGuest(t, 0x400000, 0x800000, 4)
			return e
		},
		uncovered: 0x400123,
		faultVA:   0xA00000,
	},
	ModeDualDirect: {
		build: func(t *testing.T) *env {
			e := newEnv(t, 16, coldConfig())
			e.m.SetGuestSegment(segment.NewRegisters(0x400000, 0x800000, 2<<20))
			e.m.SetVMMSegment(segment.NewRegisters(0, e.hostBase, e.guestSize))
			e.mapGuest(t, 0x900000, 0x880000, 4)
			return e
		},
		uncovered: 0x900123,
		covered:   0x400123,
		vmmCovers: true,
		faultVA:   0xA00000,
	},
	ModeVMMDirect: {
		build: func(t *testing.T) *env {
			e := newEnv(t, 16, coldConfig())
			e.m.SetVMMSegment(segment.NewRegisters(0, e.hostBase, e.guestSize))
			e.mapGuest(t, 0x400000, 0x800000, 4)
			return e
		},
		uncovered: 0x400123,
		vmmCovers: true,
		faultVA:   0xA00000,
	},
	ModeGuestDirect: {
		build: func(t *testing.T) *env {
			e := newEnv(t, 16, coldConfig())
			e.m.SetGuestSegment(segment.NewRegisters(0x400000, 0x800000, 2<<20))
			e.mapGuest(t, 0x900000, 0x880000, 4)
			return e
		},
		uncovered: 0x900123,
		covered:   0x400123,
		faultVA:   0xA00000,
	},
	ModeFlatNested: {
		build: func(t *testing.T) *env {
			e := newEnv(t, 16, coldConfig())
			e.m.SetFlatNested(true)
			e.mapGuest(t, 0x400000, 0x800000, 4)
			return e
		},
		uncovered: 0x400123,
		faultVA:   0xA00000,
	},
}

// TestSchemeConformance is the suite every registered scheme must
// pass: identity and requirements consistency, the closed-form cost
// table against measured walk counts, the stats identities, the
// TranslateBlock fault-index contract, and ASID flush semantics per
// the scheme's key template.
func TestSchemeConformance(t *testing.T) {
	for _, name := range SchemeNames() {
		if _, ok := conformanceFixtures[Mode(name)]; !ok {
			t.Fatalf("registered scheme %q has no conformance fixture; add one to conformanceFixtures", name)
		}
	}
	for mode, fx := range conformanceFixtures {
		t.Run(string(mode), func(t *testing.T) {
			scheme, err := SchemeByName(string(mode))
			if err != nil {
				t.Fatal(err)
			}
			t.Run("identity", func(t *testing.T) { checkSchemeIdentity(t, scheme, fx) })
			t.Run("cost", func(t *testing.T) { checkSchemeCost(t, scheme, fx) })
			t.Run("statsIdentities", func(t *testing.T) { checkSchemeStats(t, scheme, fx) })
			t.Run("faultIndex", func(t *testing.T) { checkSchemeFaultIndex(t, fx) })
			t.Run("asidFlush", func(t *testing.T) { checkSchemeASID(t, scheme, fx) })
		})
	}
}

func checkSchemeIdentity(t *testing.T, s Scheme, fx schemeFixture) {
	e := fx.build(t)
	if e.m.Mode() != s.Name() {
		t.Fatalf("fixture selects mode %v, want %v", e.m.Mode(), s.Name())
	}
	if e.m.ActiveScheme() != s {
		t.Fatal("ActiveScheme is not the registered singleton")
	}
	if s.Name().Virtualized() != s.Virtualized() {
		t.Error("Mode.Virtualized disagrees with Scheme.Virtualized")
	}
	req := s.Requirements()
	if req.Virtualized != s.Virtualized() {
		t.Errorf("Requirements.Virtualized = %v, scheme says %v", req.Virtualized, s.Virtualized())
	}
	if req.GuestSegment != e.m.GuestSegment().Enabled() && fx.covered != 0 {
		t.Error("fixture guest segment disagrees with Requirements")
	}
	if !s.Keys().GuestASIDTagged {
		t.Error("all current schemes key guest translations by ASID")
	}
	if s.Keys().NestedShared != s.Virtualized() {
		t.Error("nested entries are shared exactly for virtualized schemes")
	}
}

// checkSchemeCost validates the scheme's closed-form cost-table entry
// against measured reference and check counts on a cold, strict
// configuration — the same numbers internal/oracle pins per walk.
func checkSchemeCost(t *testing.T, s Scheme, fx schemeFixture) {
	probe := func(va uint64, covered bool) {
		e := fx.build(t)
		in := CostInput{
			GuestLevels:     4,
			NestedLevels:    4,
			GuestCovered:    covered,
			VMMCovered:      fx.vmmCovers,
			GuestSegEnabled: e.m.GuestSegment().Enabled(),
			VMMSegEnabled:   e.m.VMMSegment().Enabled(),
		}
		want := s.WalkCost(in)
		st0 := e.m.Stats()
		if _, fault := e.m.Translate(va); fault != nil {
			t.Fatalf("va %#x: %v", va, fault)
		}
		st := e.m.Stats()
		if refs := st.WalkMemRefs - st0.WalkMemRefs; refs != want.Refs {
			t.Errorf("va %#x: %d refs, cost table says %d", va, refs, want.Refs)
		}
		if checks := st.SegmentChecks - st0.SegmentChecks; checks != want.Checks {
			t.Errorf("va %#x: %d checks, cost table says %d", va, checks, want.Checks)
		}
	}
	probe(fx.uncovered, false)
	if fx.covered != 0 {
		probe(fx.covered, true)
	}
}

// checkSchemeStats drives a mixed access pattern and holds the
// scheme to the global stat identities, bounding walk references by
// the scheme's own worst-case cost entry.
func checkSchemeStats(t *testing.T, s Scheme, fx schemeFixture) {
	e := fx.build(t)
	vas := []uint64{fx.uncovered, fx.uncovered, fx.uncovered + 0x1000, fx.uncovered}
	if fx.covered != 0 {
		vas = append(vas, fx.covered, fx.covered+0x2000, fx.covered)
	}
	for i := 0; i < 3; i++ {
		for _, va := range vas {
			if _, fault := e.m.Translate(va); fault != nil {
				t.Fatalf("va %#x: %v", va, fault)
			}
		}
	}
	st := e.m.Stats()
	if st.Accesses != st.L1Hits+st.L1Misses {
		t.Errorf("accesses %d != L1 hits %d + misses %d", st.Accesses, st.L1Hits, st.L1Misses)
	}
	if st.L1Misses != st.ZeroDWalks+st.L2Hits+st.Walks {
		t.Errorf("L1 misses %d != 0D %d + L2 hits %d + walks %d",
			st.L1Misses, st.ZeroDWalks, st.L2Hits, st.Walks)
	}
	worst := s.WalkCost(CostInput{
		GuestLevels:     4,
		NestedLevels:    4,
		GuestSegEnabled: e.m.GuestSegment().Enabled(),
		VMMSegEnabled:   e.m.VMMSegment().Enabled(),
	})
	if st.WalkMemRefs > st.Walks*worst.Refs {
		t.Errorf("%d refs over %d walks exceeds the scheme's worst case %d/walk",
			st.WalkMemRefs, st.Walks, worst.Refs)
	}
	if st.EscapeTaken > st.EscapeProbes {
		t.Errorf("escape taken %d > probes %d", st.EscapeTaken, st.EscapeProbes)
	}
	if st.GuestFaults != 0 || st.NestedFaults != 0 {
		t.Errorf("unexpected faults: %+v", st)
	}
}

// checkSchemeFaultIndex pins the TranslateBlock contract: the return
// value is the faulting event's index, the faulting access is counted,
// and the block resumes from that index after the fault is serviced.
func checkSchemeFaultIndex(t *testing.T, fx schemeFixture) {
	e := fx.build(t)
	vas := []uint64{fx.uncovered, fx.uncovered + 0x1000, fx.faultVA, fx.uncovered}
	evs := make([]trace.Event, len(vas))
	for i, va := range vas {
		evs[i] = trace.Event{Kind: trace.Access, VA: addr.GVA(va)}
	}
	out := make([]Result, len(evs))
	n, fault := e.m.TranslateBlock(evs, out)
	if fault == nil || n != 2 {
		t.Fatalf("TranslateBlock = %d, %v; want fault at index 2", n, fault)
	}
	if fault.Kind != FaultGuest || fault.Addr != fx.faultVA {
		t.Fatalf("fault = %+v, want guest fault at %#x", fault, fx.faultVA)
	}
	if got := e.m.Stats().Accesses; got != 3 {
		t.Errorf("accesses after fault = %d, want 3 (the faulting access counts)", got)
	}
	if err := e.gPT.Map(fx.faultVA, 0x700000, addr.Page4K); err != nil {
		t.Fatal(err)
	}
	n, fault = e.m.TranslateBlock(evs[2:], out[2:])
	if fault != nil || n != 2 {
		t.Fatalf("resume = %d, %v; want 2, nil", n, fault)
	}
	if got := e.m.Stats().Accesses; got != 5 {
		t.Errorf("accesses after resume = %d, want 5", got)
	}
}

// checkSchemeASID pins the key-template semantics: tagged guest
// entries survive a switch away and back, and FlushASID of the active
// tag forces the next access off the L1 path.
func checkSchemeASID(t *testing.T, s Scheme, fx schemeFixture) {
	if !s.Keys().GuestASIDTagged {
		t.Skip("scheme does not tag guest entries")
	}
	e := fx.build(t)
	seg := e.m.GuestSegment()
	e.m.ContextSwitchASID(e.gPT, seg, 1)
	if _, fault := e.m.Translate(fx.uncovered); fault != nil {
		t.Fatal(fault)
	}
	// Switch away (empty address space) and back: the entry must hit.
	other, err := pagetable.New(e.guestMem)
	if err != nil {
		t.Fatal(err)
	}
	e.m.ContextSwitchASID(other, segment.Disabled(), 2)
	e.m.ContextSwitchASID(e.gPT, seg, 1)
	st0 := e.m.Stats()
	if _, fault := e.m.Translate(fx.uncovered); fault != nil {
		t.Fatal(fault)
	}
	if hits := e.m.Stats().L1Hits - st0.L1Hits; hits != 1 {
		t.Errorf("tagged entry did not survive the round-trip switch (L1 hits +%d)", hits)
	}
	// Flushing the active ASID must force the next access off the L1.
	e.m.FlushASID(1)
	st0 = e.m.Stats()
	if _, fault := e.m.Translate(fx.uncovered); fault != nil {
		t.Fatal(fault)
	}
	if hits := e.m.Stats().L1Hits - st0.L1Hits; hits != 0 {
		t.Errorf("entry survived FlushASID of its own tag (L1 hits +%d)", hits)
	}
}
