// The host policy engine: the churn the density study runs between
// admissions and at every replay barrier. Each op draws from the one
// policy RNG and acts on shared host state, so ops only ever run on
// the serial path (admission loop or RunSharded barrier). Ops that are
// inapplicable in the current state (nothing to balloon, no shared
// pages to break) still consume their draws and become no-ops, keeping
// the draw sequence aligned across configurations that differ only in
// what the ops find.

package host

import (
	"errors"
	"fmt"

	"vdirect/internal/addr"
	"vdirect/internal/vmm"
)

// hostSlackFrames is how much free host memory growth-type ops
// (hotplug, migration) always leave untouched, so churn never starves
// replay-time allocations (nested-table growth, CoW breaks).
const hostSlackFrames = (16 << 20) >> addr.PageShift4K

// churn runs n policy ops.
func (s *Sim) churn(n int) error {
	for i := 0; i < n; i++ {
		if err := s.policyOp(); err != nil {
			return err
		}
	}
	return nil
}

// policyOp draws and runs one op. The weights skew toward the ops that
// perturb host layout (balloon, retire) — the fragmentation story —
// with sharing and migration as lower-frequency background services.
func (s *Sim) policyOp() error {
	if len(s.Guests) == 0 {
		return nil
	}
	var err error
	switch s.rng.Uint64n(10) {
	case 0, 1:
		err = s.opBalloon()
	case 2:
		err = s.opHotplug()
	case 3, 4:
		err = s.opRetire()
	case 5, 6:
		s.opContent()
	case 7:
		err = s.opShare()
	case 8:
		err = s.opCoWBreak()
	case 9:
		err = s.opMigrate()
	}
	s.flushInvalidated()
	return err
}

// randGuest draws one admitted guest.
func (s *Sim) randGuest() *Guest {
	return s.Guests[s.rng.Uint64n(uint64(len(s.Guests)))]
}

// opBalloon squeezes a random guest by a small random amount, down to
// its balloon floor. For a segment guest every reclaimed page enters
// the escape filter — this is the op that makes density cost escapes.
func (s *Sim) opBalloon() error {
	g := s.randGuest()
	take := 1 + s.rng.Uint64n(256) // frames
	floor := s.Cfg.BalloonFloor >> addr.PageShift4K
	free := g.Kernel.Mem.FreeFrames()
	if free <= floor {
		return nil
	}
	if max := free - floor; take > max {
		take = max
	}
	if _, err := g.Kernel.BalloonOut(take<<addr.PageShift4K, nil); err != nil {
		return fmt.Errorf("host: balloon op on %s: %w", g.Name, err)
	}
	return nil
}

// opHotplug grants a random guest a small amount of fresh memory,
// backed by scattered host frames (so a segment guest's new range
// stays outside its segment).
func (s *Sim) opHotplug() error {
	g := s.randGuest()
	size := (1 + s.rng.Uint64n(8)) << 20 // 1–8 MB
	need := (size >> addr.PageShift4K) + hostSlackFrames
	if s.Host.Mem.FreeFrames() < need {
		return nil // host too tight to grant memory
	}
	prev := s.Host.Mem.SetAllocOwner(g.Owner())
	defer s.Host.Mem.SetAllocOwner(prev)
	if _, err := g.Kernel.HotplugGrow(size); err != nil {
		return fmt.Errorf("host: hotplug op on %s: %w", g.Name, err)
	}
	return nil
}

// opRetire hard-faults one host page backing a random guest page: the
// VMM repoints the mapping at a healthy frame, and — for a segment
// guest — the page escapes through the filter (§V). The dead frame
// stays a permanent hole in the host layout.
func (s *Sim) opRetire() error {
	g := s.randGuest()
	gpa := addr.PageBase(s.rng.Uint64n(g.VM.GuestMem.Size()), addr.Page4K)
	prev := s.Host.Mem.SetAllocOwner(g.Owner())
	defer s.Host.Mem.SetAllocOwner(prev)
	if _, err := g.VM.RetirePage(gpa); err != nil {
		// Ballooned/unplugged (no backing), shared, or host-OOM pages
		// cannot retire; the op is a deterministic no-op.
		return nil
	}
	g.Retires++
	s.escapeIfCovered(g, gpa)
	g.invalidate = true
	return nil
}

// opContent stamps duplicate-prone content hashes onto a few random
// pages of a random guest, feeding the sharing scanner. The hash space
// is tiny on purpose: cross-guest duplicates are the point.
func (s *Sim) opContent() {
	g := s.randGuest()
	n := 1 + s.rng.Uint64n(8)
	for i := uint64(0); i < n; i++ {
		gpa := addr.PageBase(s.rng.Uint64n(g.VM.GuestMem.Size()), addr.Page4K)
		g.VM.SetPageContent(gpa, 1+s.rng.Uint64n(63))
	}
}

// opShare runs one content-based sharing pass over every VM. Segment-
// covered ranges are skipped by the scanner itself (§IX.E: "VMM
// segments preclude page sharing").
func (s *Sim) opShare() error {
	vms := make([]*vmm.VM, len(s.Guests))
	for i, g := range s.Guests {
		vms[i] = g.VM
	}
	if _, err := s.Host.ScanAndShare(vms); err != nil {
		return fmt.Errorf("host: sharing pass: %w", err)
	}
	return nil
}

// opCoWBreak models a guest write to a shared page: the VMM gives the
// writer a private copy.
func (s *Sim) opCoWBreak() error {
	// Deterministic candidate pick: first guest (admission order) with
	// shared pages, then a random page of its list.
	for _, g := range s.Guests {
		if len(g.sharedGPAs) == 0 {
			continue
		}
		i := s.rng.Uint64n(uint64(len(g.sharedGPAs)))
		gpa := g.sharedGPAs[i]
		g.sharedGPAs = append(g.sharedGPAs[:i], g.sharedGPAs[i+1:]...)
		prev := s.Host.Mem.SetAllocOwner(g.Owner())
		defer s.Host.Mem.SetAllocOwner(prev)
		if _, err := g.VM.WriteFault(gpa); err != nil {
			if errors.Is(err, vmm.ErrNoBacking) {
				return nil // page ballooned/unplugged since it was shared
			}
			return fmt.Errorf("host: CoW break on %s: %w", g.Name, err)
		}
		return nil
	}
	return nil
}

// opMigrate live-migrates a random paging-mode guest within the host:
// pre-copy rebuilds its backing from the current free list, then the
// old frames free — the op that reshuffles host layout wholesale.
// Segment guests are pinned (Table II) and guests with shared pages
// must break sharing first; both make the op a no-op.
func (s *Sim) opMigrate() error {
	g := s.randGuest()
	if g.Direct {
		return nil
	}
	need := g.VM.BackedFrames() + nptOverheadFrames(s.guestSize) + hostSlackFrames
	if s.Host.Mem.FreeFrames() < need {
		return nil // not enough headroom for the transient double footprint
	}
	prev := s.Host.Mem.SetAllocOwner(g.Owner())
	defer s.Host.Mem.SetAllocOwner(prev)
	newVM, _, err := s.Host.Migrate(g.VM, s.Host, nil, 64, 4)
	if err != nil {
		if errors.Is(err, vmm.ErrSharedBacking) {
			return nil
		}
		return fmt.Errorf("host: migrating %s: %w", g.Name, err)
	}
	delete(s.byVM, g.VM)
	s.byVM[newVM] = g
	g.VM = newVM
	g.Kernel.SetBackend(newVM)
	g.MMU.SetNestedPageTable(newVM.NPT)
	g.Migrations++
	g.invalidate = true
	return nil
}
