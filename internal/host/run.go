// The replay phase and the oracle cross-check. Guests advance in
// lock-step quanta under sched.RunSharded — each guest is private to
// one shard goroutine per round — and the policy engine churns shared
// host state only at the serial barrier between rounds.

package host

import (
	"fmt"

	"vdirect/internal/addr"
	"vdirect/internal/mmu"
	"vdirect/internal/oracle"
	"vdirect/internal/sched"
	"vdirect/internal/trace"
)

// Run replays every tenant of every guest to completion, with policy
// churn at each quantum barrier, then verifies owner accounting and —
// unless disabled — cross-checks every guest against the oracle.
// Results are byte-identical at any Cfg.Shards.
func (s *Sim) Run() (Result, error) {
	err := sched.RunSharded(s.Cfg.Shards, len(s.Guests),
		func(i int) (bool, error) {
			return s.Guests[i].step(s.Cfg.Quantum)
		},
		func(round int) error {
			return s.churn(s.Cfg.RoundChurn)
		})
	if err != nil {
		return Result{}, err
	}

	// Commit walk samples in guest order (the per-guest samplers are
	// private to their shard during replay), then detach them so the
	// cross-check's probe traffic is never sampled.
	if s.prof != nil {
		for _, sampler := range s.samplers {
			s.prof.Commit(sampler)
		}
		for _, g := range s.Guests {
			g.MMU.SetWalkSampler(nil)
		}
	}

	res := s.collect()
	if err := s.CheckAccounting(); err != nil {
		return Result{}, err
	}
	for _, g := range s.Guests {
		if err := checkStatsIdentities(g.Name, g.MMU.Stats()); err != nil {
			return Result{}, err
		}
	}
	if !s.Cfg.SkipCrossCheck {
		if err := s.CrossCheck(); err != nil {
			return Result{}, err
		}
	}
	return res, nil
}

// checkStatsIdentities asserts the counter identities every MMU must
// satisfy (the oracle harness's CheckStats invariants), per guest.
func checkStatsIdentities(name string, st mmu.Stats) error {
	if st.Accesses != st.L1Hits+st.L1Misses {
		return fmt.Errorf("host: %s: accesses %d != L1 hits %d + misses %d",
			name, st.Accesses, st.L1Hits, st.L1Misses)
	}
	if st.L1Misses != st.ZeroDWalks+st.L2Hits+st.Walks {
		return fmt.Errorf("host: %s: L1 misses %d != 0D %d + L2 hits %d + walks %d",
			name, st.L1Misses, st.ZeroDWalks, st.L2Hits, st.Walks)
	}
	if st.EscapeTaken > st.EscapeProbes {
		return fmt.Errorf("host: %s: escapes taken %d > probes %d",
			name, st.EscapeTaken, st.EscapeProbes)
	}
	if st.GuestFaults+st.NestedFaults > st.Walks {
		return fmt.Errorf("host: %s: faults %d+%d > walks %d",
			name, st.GuestFaults, st.NestedFaults, st.Walks)
	}
	return nil
}

// crossCheckProbes is how many virtual addresses the differential
// check probes per tenant.
const crossCheckProbes = 256

// CrossCheck mirrors every guest in the oracle's flat reference model
// and compares translations over a deterministic probe set: for each
// tenant, its page table and the guest's nested table are dumped into
// the model, segments copied register-for-register, and the exact
// escaped-page set installed where the production stack has a Bloom
// filter. Every probe must agree on fault dimension and — for
// successful translations — the final host physical address. Bloom
// false positives cannot diverge here: a false-positive escape takes
// the nested walk, which maps the same address the segment computes.
func (s *Sim) CrossCheck() error {
	for _, g := range s.Guests {
		for t, proc := range g.Procs {
			model := oracle.NewModel()
			model.Virtualized = true
			if proc.Seg.Enabled() {
				model.GuestSeg = oracle.Segment{
					Base: proc.Seg.Base, Limit: proc.Seg.Limit, Offset: proc.Seg.Offset}
			}
			if seg := g.VM.VMMSegment(); seg.Enabled() {
				model.VMMSeg = oracle.Segment{
					Base: seg.Base, Limit: seg.Limit, Offset: seg.Offset}
			}
			proc.PT.VisitLeaves(func(va, gpa uint64, sz addr.PageSize) bool {
				model.MapGuest(va, gpa, sz)
				return true
			})
			g.VM.NPT.VisitLeaves(func(gpa, hpa uint64, sz addr.PageSize) bool {
				model.MapNested(gpa, hpa, sz)
				return true
			})
			for pfn := range g.escaped {
				model.EscapedVMM[pfn] = true
			}
			if err := s.crossCheckTenant(g, t, model); err != nil {
				return err
			}
		}
	}
	return nil
}

// crossCheckTenant probes one tenant's address space through both
// stacks. The probe set is seeded by (guest, tenant) alone, so it is
// identical across shard counts and host parallelism.
func (s *Sim) crossCheckTenant(g *Guest, t int, model *oracle.Model) error {
	if err := g.Sched.SwitchTo(t, g.MMU); err != nil {
		return err
	}
	// The workload's primary region (proc.PrimaryRegion is only set on
	// the segment-backed path; Base tenants map the same range by VA).
	prim := g.workloads[t].PrimaryRegion()
	rng := trace.NewRand(s.Cfg.Seed ^ uint64(g.Index)<<16 ^ uint64(t)<<8 ^ 0x0CA1)
	for i := 0; i < crossCheckProbes; i++ {
		va := prim.Start + rng.Uint64n(prim.Size)
		if i%8 == 7 {
			// Every eighth probe leaves the primary region: stack pages,
			// and addresses likely unmapped (both stacks must fault).
			va = rng.Uint64n(1 << 40)
		}
		pred := model.Translate(va)
		res, fault := g.MMU.Translate(va)
		if (fault != nil) != (pred.Fault != oracle.FaultNone) {
			return fmt.Errorf("host: %s tenant %d: VA %#x: mmu fault %v, oracle fault %v",
				g.Name, t, va, fault, pred.Fault)
		}
		if fault != nil {
			mmuDim := oracle.FaultGuest
			if fault.Kind == mmu.FaultNested {
				mmuDim = oracle.FaultNested
			}
			if mmuDim != pred.Fault {
				return fmt.Errorf("host: %s tenant %d: VA %#x: mmu fault dim %v, oracle %v",
					g.Name, t, va, fault.Kind, pred.Fault)
			}
			continue
		}
		if res.HPA != pred.HPA {
			return fmt.Errorf("host: %s tenant %d: VA %#x: mmu hPA %#x, oracle %#x",
				g.Name, t, va, res.HPA, pred.HPA)
		}
	}
	return nil
}
