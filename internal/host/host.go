// Package host is the whole-host consolidation layer: it builds and
// drives N virtual machines — each with its own guest kernel, tenant
// processes, ASID-tagged MMU, and replay engines — contending for one
// shared physmem.Memory, under a host policy engine that runs the
// paper's memory services as churn: ballooning tug-of-war (§VI.C),
// memory hotplug, page retirement into the escape filter (§V),
// content-based page sharing (§IX.E), and intra-host live migration.
//
// The modeled question is §VIII/§IX at machine scale: as consolidation
// density rises on a fixed host, when does the contiguous host run a
// VMM segment needs stop being creatable (the fragmentation knee), and
// what does the escape filter cost once host services have polluted it?
//
// Determinism contract: guests are share-nothing during replay — each
// owns its MMU, guest physical memory, page tables, and nested table —
// so sched.RunSharded can partition them across shard goroutines.
// Everything that touches shared host state (the policy engine, the
// physical allocator) runs serially: at admission time and at the
// quantum barrier between rounds. Every random draw comes from one
// trace.Rand seeded by the config, so a run is byte-identical at any
// shard count or host parallelism.
package host

import (
	"errors"
	"fmt"

	"vdirect/internal/addr"
	"vdirect/internal/guestos"
	"vdirect/internal/mmu"
	"vdirect/internal/physmem"
	"vdirect/internal/replay"
	"vdirect/internal/telemetry/walkprof"
	"vdirect/internal/trace"
	"vdirect/internal/vmm"
	"vdirect/internal/workload"
)

// Quantum is the default per-tenant scheduling quantum, in accesses,
// between policy barriers. Smaller than the consolidation study's so a
// host run interleaves several policy rounds with replay even at small
// trace sizes; like there, results are identical at any value only in
// the absence of policy churn — the quantum is part of the host
// configuration, not a performance knob.
const Quantum = 1 << 13

// Config describes one whole-host simulation cell.
type Config struct {
	// Name labels the cell in walk profiles ("host-d4/gups").
	Name string
	// HostMemory is the host physical memory size in bytes; 0 sizes the
	// host generously for Guests (no contention). The density studies
	// pass a fixed value across densities — that is the experiment.
	HostMemory uint64
	// Guests is the consolidation density: how many VMs to admit.
	Guests int
	// TenantsPerGuest is the number of processes per guest (default 2).
	TenantsPerGuest int
	// Workload names the Table V workload every tenant runs.
	Workload string
	// WL sizes each tenant's trace; WL.Seed is the base seed, varied
	// per (guest, tenant).
	WL workload.Config
	// GuestHeadroom is extra guest physical memory per guest beyond the
	// tenants' primary backing (page tables, stacks, churn arenas,
	// balloon slack). Default 64MB.
	GuestHeadroom uint64
	// Seed drives the policy engine's random draws.
	Seed uint64
	// AdmitChurn is how many policy ops run after each admission
	// (default 8); RoundChurn how many run at each quantum barrier
	// (default 1).
	AdmitChurn int
	RoundChurn int
	// BalloonFloor is the free guest memory a guest always keeps when
	// ballooned, so demand paging keeps working. Default 32MB.
	BalloonFloor uint64
	// Shards is host-side parallelism for the replay phase (results are
	// identical at any value ≥ 1).
	Shards int
	// Quantum overrides the scheduling quantum (default Quantum).
	Quantum int
	// SkipCrossCheck disables the per-guest oracle differential check
	// after replay (it is cheap; benchmarks may skip it).
	SkipCrossCheck bool
}

func (c *Config) defaults() error {
	if c.Guests <= 0 {
		return fmt.Errorf("host: need at least one guest, got %d", c.Guests)
	}
	if c.TenantsPerGuest <= 0 {
		c.TenantsPerGuest = 2
	}
	if c.Workload == "" {
		c.Workload = "gups"
	}
	if !workload.Exists(c.Workload) {
		return fmt.Errorf("host: unknown workload %q", c.Workload)
	}
	if c.WL.MemoryMB == 0 {
		c.WL = workload.Config{Seed: 1, MemoryMB: 24, Ops: 50000}
	}
	if c.GuestHeadroom == 0 {
		c.GuestHeadroom = 64 << 20
	}
	// Churn knobs: 0 means default, negative means none.
	if c.AdmitChurn == 0 {
		c.AdmitChurn = 8
	} else if c.AdmitChurn < 0 {
		c.AdmitChurn = 0
	}
	if c.RoundChurn == 0 {
		c.RoundChurn = 1
	} else if c.RoundChurn < 0 {
		c.RoundChurn = 0
	}
	if c.BalloonFloor == 0 {
		c.BalloonFloor = 32 << 20
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Quantum <= 0 {
		c.Quantum = Quantum
	}
	if c.Name == "" {
		c.Name = fmt.Sprintf("host-d%d/%s", c.Guests, c.Workload)
	}
	return nil
}

// GuestSize returns the guest physical memory size one guest of this
// configuration needs (used by the density studies to size the host).
func (c *Config) GuestSize() uint64 {
	w := workload.New(c.Workload, c.WL)
	prim := w.PrimaryRegion()
	perTenant := addr.AlignUp(prim.Size, addr.PageSize4K) + addr.PageSize4K
	return addr.AlignUp(uint64(c.TenantsPerGuest)*perTenant+c.GuestHeadroom, addr.PageSize4K)
}

// nptOverheadFrames estimates the host frames a guest's nested page
// table consumes at 4K nested pages (one L1 table per 2M of guest
// memory, plus upper levels).
func nptOverheadFrames(guestSize uint64) uint64 {
	leaves := guestSize >> addr.PageShift4K
	return leaves/512 + leaves/(512*512) + 8
}

// Guest is one admitted VM and its private simulation stack.
type Guest struct {
	Index int
	Name  string
	// Mode is the translation scheme the guest ended up on: Dual Direct
	// when admission could still carve a contiguous host run, Base
	// Virtualized 4K+4K once it could not.
	Mode mmu.Mode
	// Direct reports whether the guest runs with a VMM segment.
	Direct bool

	VM     *vmm.VM
	Kernel *guestos.Kernel
	Procs  []*guestos.Process
	Sched  *guestos.Scheduler
	MMU    *mmu.MMU

	engines   []*replay.Engine
	workloads []workload.Workload
	done      []bool

	// Replay accounting, written only by the owning shard during the
	// replay phase (sched.RunSharded's determinism contract).
	accesses   []uint64 // by tenant
	walkCycles uint64

	// escaped is the exact set of gPA pages this guest's host layer
	// inserted into the VMM escape filter (the oracle mirror of the
	// Bloom filter's membership).
	escaped map[uint64]bool
	// sharedGPAs are guest pages currently remapped onto deduplicated
	// frames (CoW-break candidates for the policy engine).
	sharedGPAs []uint64
	// invalidate marks that a policy op changed this guest's nested
	// state; the op wrapper flushes the MMU once per affected guest.
	invalidate bool

	// Policy-op counters.
	Balloons, Hotplugs, Retires, SharedIn, CoWBreaks, Migrations uint64
}

// Owner returns the guest's physmem owner ID (guest 0 → owner 1;
// OwnerNone stays reserved for VMM-internal frames).
func (g *Guest) Owner() physmem.OwnerID { return physmem.OwnerID(g.Index + 1) }

// Sim is one whole-host simulation.
type Sim struct {
	Cfg    Config
	Host   *vmm.Host
	Guests []*Guest

	guestSize uint64
	rng       *trace.Rand
	byVM      map[*vmm.VM]*Guest
	prof      *walkprof.Profile
	samplers  []*walkprof.Sampler
	baseCPI   float64
}

// NewSim builds the host and admits every guest, running policy churn
// between admissions. Guests are admitted Dual Direct while the host
// can still provide a contiguous backing run; afterwards they fall
// back to Base Virtualized 4K+4K, ballooning earlier guests if even
// scattered frames run short (the tug-of-war).
func NewSim(cfg Config) (*Sim, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	gs := cfg.GuestSize()
	if cfg.HostMemory == 0 {
		cfg.HostMemory = addr.AlignUp(uint64(cfg.Guests)*(gs+gs/4)+(64<<20), addr.PageSize4K)
	}
	s := &Sim{
		Cfg:       cfg,
		Host:      vmm.NewHost(cfg.HostMemory),
		guestSize: gs,
		rng:       trace.NewRand(cfg.Seed ^ 0x4057),
		byVM:      make(map[*vmm.VM]*Guest),
		prof:      walkprof.Enabled(),
		baseCPI:   workload.New(cfg.Workload, cfg.WL).BaseCPI(),
	}
	s.Host.Mem.TrackOwners()
	s.Host.SetCallbacks(s.callbacks())
	for i := 0; i < cfg.Guests; i++ {
		if err := s.admit(i); err != nil {
			return nil, fmt.Errorf("host: admitting guest %d: %w", i, err)
		}
		if err := s.churn(cfg.AdmitChurn); err != nil {
			return nil, fmt.Errorf("host: churn after guest %d: %w", i, err)
		}
	}
	return s, nil
}

// admit builds guest i: VM (Dual Direct if possible), kernel, tenant
// processes, MMU, and replay engines. All host allocations it causes
// are attributed to the guest's owner ID.
func (s *Sim) admit(i int) error {
	prevOwner := s.Host.Mem.SetAllocOwner(physmem.OwnerID(i + 1))
	defer s.Host.Mem.SetAllocOwner(prevOwner)

	g := &Guest{
		Index:   i,
		Name:    fmt.Sprintf("guest%d", i),
		escaped: make(map[uint64]bool),
	}

	// Dual Direct needs the §VI.A boot-time contiguous reservation;
	// when host memory is too fragmented (or too full) for that, the
	// guest is admitted Base Virtualized over scattered 4K frames.
	vm, err := s.Host.CreateVM(vmm.VMConfig{
		Name:              g.Name,
		MemorySize:        s.guestSize,
		NestedPageSize:    addr.Page4K,
		ContiguousBacking: true,
	})
	switch {
	case err == nil:
		g.Direct = true
		g.Mode = mmu.ModeDualDirect
	case errors.Is(err, vmm.ErrHostFragmented):
		vm, err = s.createChunked(g)
		if err != nil {
			return err
		}
		g.Mode = mmu.ModeBaseVirtualized
	default:
		return err
	}
	g.VM = vm
	s.byVM[vm] = g
	// fail rolls a half-admitted guest back out of the host, so a
	// failed admission leaks no frames and its owner ID stays clean for
	// a retry.
	fail := func(err error) error {
		delete(s.byVM, vm)
		s.Host.DestroyVM(vm)
		return err
	}
	g.Kernel = guestos.NewKernel(vm.GuestMem, vm)
	g.MMU = mmu.New(mmu.Config{})
	g.MMU.SetNestedPageTable(vm.NPT)
	if g.Direct {
		seg, err := vm.TryEnableVMMSegment()
		if err != nil {
			return fail(err)
		}
		g.MMU.SetVMMSegment(seg)
	}

	if err := s.buildTenants(g); err != nil {
		return fail(err)
	}
	// The scheme is per-tenant state (guest segment registers load on
	// context switch); switch tenant 0 in to assert the assembled mode.
	if err := g.Sched.SwitchTo(0, g.MMU); err != nil {
		return fail(err)
	}
	if got := g.MMU.Mode(); got != g.Mode {
		return fail(fmt.Errorf("host: guest %d assembled mode %v, wanted %v", i, got, g.Mode))
	}

	s.Guests = append(s.Guests, g)
	if s.prof != nil {
		sampler := s.prof.Sampler(s.Cfg.Name, i, s.Cfg.WL.Seed+uint64(i))
		g.MMU.SetWalkSampler(sampler)
		s.samplers = append(s.samplers, sampler)
	}
	return nil
}

// createChunked admits a guest over scattered 4K frames, ballooning
// earlier guests first when even those run short — the host squeezes
// existing tenants to fit one more (the tug-of-war).
func (s *Sim) createChunked(g *Guest) (*vmm.VM, error) {
	cfg := vmm.VMConfig{
		Name:           g.Name,
		MemorySize:     s.guestSize,
		NestedPageSize: addr.Page4K,
	}
	need := (s.guestSize >> addr.PageShift4K) + nptOverheadFrames(s.guestSize)
	if free := s.Host.Mem.FreeFrames(); free < need {
		if err := s.balloonForFrames(need - free); err != nil {
			return nil, err
		}
	}
	vm, err := s.Host.CreateVM(cfg)
	if err != nil {
		return nil, fmt.Errorf("host: overcommitted even after ballooning: %w", err)
	}
	return vm, nil
}

// balloonForFrames squeezes admitted guests, in admission order, until
// the host has freed `frames` more frames or every guest is at its
// balloon floor.
func (s *Sim) balloonForFrames(frames uint64) error {
	floorFrames := s.Cfg.BalloonFloor >> addr.PageShift4K
	for _, victim := range s.Guests {
		if frames == 0 {
			return nil
		}
		free := victim.Kernel.Mem.FreeFrames()
		if free <= floorFrames {
			continue
		}
		take := free - floorFrames
		if take > frames {
			take = frames
		}
		if _, err := victim.Kernel.BalloonOut(take<<addr.PageShift4K, nil); err != nil {
			return fmt.Errorf("host: ballooning %s: %w", victim.Name, err)
		}
		s.flushInvalidated()
		frames -= take
	}
	if frames > 0 {
		return fmt.Errorf("host: %d frames still short after ballooning every guest to its floor", frames)
	}
	return nil
}

// buildTenants creates the guest's processes, workloads, and replay
// engines. Dual Direct tenants get segment-backed primary regions;
// Base tenants get eagerly mapped 4K paging, both exactly as the
// single-cell experiment runner lays them out.
func (s *Sim) buildTenants(g *Guest) error {
	n := s.Cfg.TenantsPerGuest
	g.Procs = make([]*guestos.Process, n)
	g.workloads = make([]workload.Workload, n)
	g.engines = make([]*replay.Engine, n)
	g.done = make([]bool, n)
	g.accesses = make([]uint64, n)
	for t := 0; t < n; t++ {
		wcfg := s.Cfg.WL
		wcfg.Seed = s.Cfg.WL.Seed + uint64(g.Index*n+t)*0x9e37 + uint64(t) + 1
		w := workload.New(s.Cfg.Workload, wcfg)
		proc, err := g.Kernel.CreateProcess(fmt.Sprintf("%s/t%d", g.Name, t))
		if err != nil {
			return err
		}
		prim := w.PrimaryRegion()
		if g.Direct {
			if err := proc.CreatePrimaryRegionAt(prim); err != nil {
				return err
			}
		} else {
			if err := proc.MMapAt(prim); err != nil {
				return err
			}
			if err := proc.MapRegion(prim, addr.Page4K); err != nil {
				return err
			}
		}
		for _, r := range w.StaticRegions() {
			if r == prim {
				continue
			}
			if err := proc.MMapAt(r); err != nil {
				return err
			}
		}
		if err := proc.Prefault(addr.Range{Start: workload.StackBase, Size: 32 << 10}); err != nil {
			return err
		}
		g.Procs[t] = proc
		g.workloads[t] = w
		tenant := t
		g.engines[t] = replay.New(w, replay.Hooks{
			AccessBlock: func(evs []trace.Event) (int, error) {
				return g.translateBlock(tenant, evs)
			},
		}, replay.Config{})
	}
	g.Sched = guestos.NewScheduler(g.Kernel, g.Procs)
	g.Sched.UseASID = true
	return nil
}

// step advances every live tenant of the guest by one quantum, context
// switching the guest MMU between tenants (ASID-tagged, so switching
// costs tag updates, not TLB flushes). Returns true when every tenant
// has drained its trace. Runs inside a shard goroutine; touches only
// guest-private state.
func (g *Guest) step(quantum int) (bool, error) {
	allDone := true
	for t, eng := range g.engines {
		if g.done[t] {
			continue
		}
		if err := g.Sched.SwitchTo(t, g.MMU); err != nil {
			return true, err
		}
		before := g.MMU.Stats().WalkCycles
		n, more, err := eng.Step(quantum)
		g.walkCycles += g.MMU.Stats().WalkCycles - before
		g.accesses[t] += uint64(n)
		if err != nil {
			return true, fmt.Errorf("host: %s tenant %d: %w", g.Name, t, err)
		}
		if more {
			allDone = false
		} else {
			g.done[t] = true
		}
	}
	return allDone, nil
}

// translateBlock is the per-tenant access hook: the standard demand-
// paging protocol against the guest's shared MMU with the tenant's
// process switched in.
func (g *Guest) translateBlock(tenant int, evs []trace.Event) (int, error) {
	proc := g.Procs[tenant]
	done, attempt := 0, 0
	for {
		n, fault := g.MMU.TranslateBlock(evs[done:], nil)
		done += n
		if fault == nil {
			return done, nil
		}
		if n > 0 {
			attempt = 0 // a new event is faulting
		}
		attempt++
		if fault.Kind != mmu.FaultGuest {
			return done, fmt.Errorf("host: unexpected nested fault at gPA %#x", fault.Addr)
		}
		if err := proc.HandleFault(fault.Addr); err != nil {
			return done, fmt.Errorf("host: fault at %#x: %w", fault.Addr, err)
		}
		if attempt >= 3 {
			return done, fmt.Errorf("host: access at %#x still faulting after service", uint64(evs[done].VA))
		}
	}
}

// callbacks wires the VMM's host-layer seam: every operation that
// changes which host frame backs which guest page updates the owning
// guest's escape filter (segment guests), exact escaped set, CoW
// candidate list, and op counters, and marks its MMU for invalidation.
func (s *Sim) callbacks() vmm.Callbacks {
	return vmm.Callbacks{
		Ballooned: func(vm *vmm.VM, gpa uint64) {
			g := s.byVM[vm]
			if g == nil {
				return
			}
			g.Balloons++
			s.escapeIfCovered(g, gpa)
			g.invalidate = true
		},
		Hotplugged: func(vm *vmm.VM, r addr.Range) {
			if g := s.byVM[vm]; g != nil {
				g.Hotplugs++
			}
		},
		Unplugged: func(vm *vmm.VM, gpa uint64) {
			g := s.byVM[vm]
			if g == nil {
				return
			}
			s.escapeIfCovered(g, gpa)
			g.invalidate = true
		},
		Shared: func(vm *vmm.VM, gpa uint64) {
			g := s.byVM[vm]
			if g == nil {
				return
			}
			g.SharedIn++
			g.sharedGPAs = append(g.sharedGPAs, gpa)
			g.invalidate = true
		},
		CoWBroken: func(vm *vmm.VM, gpa uint64) {
			g := s.byVM[vm]
			if g == nil {
				return
			}
			g.CoWBreaks++
			g.invalidate = true
		},
	}
}

// escapeIfCovered inserts a gPA page into the guest's VMM escape
// filter when a VMM segment covers it: the segment would otherwise
// keep translating an address whose backing is gone (§V — the filter
// diverts covered-but-stale pages to the nested walk).
func (s *Sim) escapeIfCovered(g *Guest, gpa uint64) {
	seg := g.VM.VMMSegment()
	if !seg.Enabled() || !seg.Contains(gpa) {
		return
	}
	pfn := gpa >> addr.PageShift4K
	if !g.escaped[pfn] {
		g.escaped[pfn] = true
		g.MMU.VMMEscapeFilter().Insert(pfn)
	}
}

// flushInvalidated flushes nested TLB state on every guest a policy op
// touched, once per guest per op.
func (s *Sim) flushInvalidated() {
	for _, g := range s.Guests {
		if g.invalidate {
			g.MMU.InvalidateNested()
			g.invalidate = false
		}
	}
}
