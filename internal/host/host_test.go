package host

import (
	"testing"

	"vdirect/internal/workload"
)

// testConfig returns a small but non-trivial host cell: guests per the
// density argument, two tenants each, on a host sized so the later
// admissions contend (the interesting regime).
func testConfig(density int) Config {
	return Config{
		Guests:          density,
		TenantsPerGuest: 2,
		Workload:        "gups",
		WL:              workload.Config{Seed: 1, MemoryMB: 8, Ops: 12000},
		GuestHeadroom:   24 << 20,
		BalloonFloor:    12 << 20,
		Seed:            42,
	}
}

func TestSmokeSingleGuest(t *testing.T) {
	cfg := testConfig(1)
	s, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Density != 1 || len(res.Guests) != 1 {
		t.Fatalf("density = %d, guests = %d", res.Density, len(res.Guests))
	}
	g := res.Guests[0]
	if !g.Direct {
		t.Error("sole guest on an auto-sized host should admit Dual Direct")
	}
	if g.Accesses == 0 {
		t.Error("no accesses replayed")
	}
	if g.OwnerFrames == 0 {
		t.Error("no frames attributed to the guest")
	}
}

func TestDensityFourGuests(t *testing.T) {
	cfg := testConfig(4)
	s, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Guests) != 4 {
		t.Fatalf("admitted %d guests, want 4", len(res.Guests))
	}
	for _, g := range res.Guests {
		if g.Accesses == 0 {
			t.Errorf("guest %d replayed no accesses", g.Guest)
		}
	}
	if res.DirectGuests == 0 {
		t.Error("no guest admitted Dual Direct")
	}
}
