// Migration under memory pressure, foreign-VM callback hygiene, and
// configuration rejection: the policy paths the density sweeps only
// reach probabilistically, driven here to completion.

package host

import (
	"strings"
	"testing"

	"vdirect/internal/addr"
	"vdirect/internal/mmu"
	"vdirect/internal/trace"
	"vdirect/internal/vmm"
	"vdirect/internal/workload"
)

// migrationConfig builds a host where the last guest admits Base
// Virtualized (the tail run is too short for its segment) but guests
// carry enough balloonable headroom that, squeezed to their floors,
// the host can hold a migration's transient double footprint.
func migrationConfig() Config {
	cfg := Config{
		Guests:          3,
		TenantsPerGuest: 2,
		Workload:        "gups",
		WL:              workload.Config{Seed: 1, MemoryMB: 4, Ops: 4000},
		GuestHeadroom:   48 << 20,
		BalloonFloor:    8 << 20,
		Seed:            7,
		AdmitChurn:      -1,
		RoundChurn:      -1,
	}
	gs := cfg.GuestSize()
	cfg.HostMemory = addr.AlignUp(2*gs+gs/2+(16<<20), addr.PageSize4K)
	return cfg
}

// TestMigrationReshufflesBaseGuest balloons the host open and drives
// the migration op until the paging-mode guest actually moves: its VM
// object is replaced, the kernel backend and MMU nested table follow,
// and every frame book still balances before and after a full replay.
func TestMigrationReshufflesBaseGuest(t *testing.T) {
	s, err := NewSim(migrationConfig())
	if err != nil {
		t.Fatal(err)
	}
	victim := s.Guests[len(s.Guests)-1]
	if victim.Direct {
		t.Fatalf("guest %d admitted Dual Direct; migration needs a paging guest", victim.Index)
	}
	oldVM := victim.VM

	// Open up room for the pre-copy double footprint.
	need := oldVM.BackedFrames() + nptOverheadFrames(s.guestSize) + hostSlackFrames
	if free := s.Host.Mem.FreeFrames(); free < need {
		if err := s.balloonForFrames(need - free); err != nil {
			t.Fatal(err)
		}
	}

	// opMigrate picks its guest at random and skips Direct guests; a
	// few dozen draws are guaranteed to hit the single Base guest.
	for i := 0; i < 64 && victim.Migrations == 0; i++ {
		if err := s.opMigrate(); err != nil {
			t.Fatal(err)
		}
		s.flushInvalidated()
	}
	if victim.Migrations == 0 {
		t.Fatal("64 migration draws never moved the Base guest")
	}
	if victim.VM == oldVM {
		t.Fatal("migration counted but the VM object did not change")
	}
	if s.byVM[victim.VM] != victim {
		t.Fatal("byVM does not map the destination VM to the migrated guest")
	}
	if _, ok := s.byVM[oldVM]; ok {
		t.Fatal("byVM still maps the released source VM")
	}
	if err := s.CheckAccounting(); err != nil {
		t.Fatal(err)
	}
	if err := checkFrameBooks(s); err != nil {
		t.Fatal(err)
	}

	// The migrated guest must replay and cross-check like any other.
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Guests[victim.Index].Migrations; got == 0 {
		t.Fatalf("result lost the migration count, got %d", got)
	}
}

// TestCallbacksIgnoreForeignVM runs every callback-firing VMM
// operation on a VM the host layer never admitted: the callbacks must
// ignore it (no counters move, no crash), and once it is destroyed the
// owner books balance as if it never existed.
func TestCallbacksIgnoreForeignVM(t *testing.T) {
	s, err := NewSim(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	balloonsBefore := s.Guests[0].Balloons
	sharedBefore := s.Guests[0].SharedIn

	foreign, err := s.Host.CreateVM(vmm.VMConfig{
		Name: "foreign", MemorySize: 4 << 20, NestedPageSize: addr.Page4K})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := foreign.HotplugAdd(1 << 20); err != nil { // Hotplugged
		t.Fatal(err)
	}
	if err := foreign.Balloon([]uint64{0}); err != nil { // Ballooned
		t.Fatal(err)
	}
	foreign.SetPageContent(1<<12, 0xAB)
	foreign.SetPageContent(2<<12, 0xAB)
	if _, err := s.Host.ScanAndShare([]*vmm.VM{foreign}); err != nil { // Shared
		t.Fatal(err)
	}
	if _, err := foreign.WriteFault(2 << 12); err != nil { // CoWBroken
		t.Fatal(err)
	}
	// While the foreign VM exists, the cross-layer accounting check must
	// flag its backing as registered to a VM the host never admitted.
	if err := s.CheckAccounting(); err == nil {
		t.Fatal("foreign VM backing escaped the accounting check")
	}
	if err := s.Host.DestroyVM(foreign); err != nil {
		t.Fatal(err)
	}

	if s.Guests[0].Balloons != balloonsBefore || s.Guests[0].SharedIn != sharedBefore {
		t.Fatal("foreign VM operations moved an admitted guest's counters")
	}
	if err := s.CheckAccounting(); err != nil {
		t.Fatal(err)
	}
	if err := checkFrameBooks(s); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestNewSimRejectsBadConfig covers the configuration error paths.
func TestNewSimRejectsBadConfig(t *testing.T) {
	if _, err := NewSim(Config{}); err == nil {
		t.Error("zero guests accepted")
	}
	if _, err := NewSim(Config{Guests: 1, Workload: "no-such-workload"}); err == nil {
		t.Error("unknown workload accepted")
	}
}

// TestTranslateBlockReportsUnservicableFault feeds a tenant an access
// far outside any mapped region: the kernel cannot service it, and the
// hook must surface the fault instead of spinning.
func TestTranslateBlockReportsUnservicableFault(t *testing.T) {
	s, err := NewSim(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	g := s.Guests[0]
	if err := g.Sched.SwitchTo(0, g.MMU); err != nil {
		t.Fatal(err)
	}
	evs := []trace.Event{{Kind: trace.Access, VA: addr.GVA(0x7f00_0000_0000)}}
	if _, err := g.translateBlock(0, evs); err == nil {
		t.Fatal("unmapped access translated without error")
	} else if !strings.Contains(err.Error(), "fault") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestAdmitUntilExhaustion keeps admitting guests onto a tight host
// until admission fails — every guest's balloonable headroom is gone —
// and checks the failed admission rolled back completely: no leaked
// frames, no stale owner stamps, no zombie byVM entry, and the host
// still replays.
func TestAdmitUntilExhaustion(t *testing.T) {
	cfg := tightConfig(2)
	cfg.AdmitChurn = -1
	cfg.RoundChurn = -1
	s, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var admitErr error
	for i := 0; i < 12; i++ {
		if admitErr = s.admit(len(s.Guests)); admitErr != nil {
			break
		}
	}
	if admitErr == nil {
		t.Fatal("12 extra admissions all succeeded on a host sized for 2 guests")
	}
	if len(s.byVM) != len(s.Guests) {
		t.Fatalf("byVM has %d entries for %d guests after failed admission",
			len(s.byVM), len(s.Guests))
	}
	if err := s.CheckAccounting(); err != nil {
		t.Fatal(err)
	}
	if err := checkFrameBooks(s); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestTranslateBlockReportsNestedFault yanks the host backing out from
// under a mapped guest page (a raw VMM balloon the kernel never asked
// for) and checks the access hook surfaces the resulting nested fault
// as an error rather than trying to service it as demand paging.
func TestTranslateBlockReportsNestedFault(t *testing.T) {
	cfg := tightConfig(3)
	cfg.AdmitChurn = -1
	cfg.RoundChurn = -1
	cfg.SkipCrossCheck = true
	s, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := s.Guests[len(s.Guests)-1]
	if g.Direct {
		t.Fatal("expected the last guest to run Base Virtualized")
	}
	if err := g.Sched.SwitchTo(0, g.MMU); err != nil {
		t.Fatal(err)
	}
	prim := g.workloads[0].PrimaryRegion()
	gpa, _, ok := g.Procs[0].PT.Translate(prim.Start)
	if !ok {
		t.Fatal("primary region start not mapped")
	}
	if err := g.VM.Balloon([]uint64{gpa >> 12}); err != nil {
		t.Fatal(err)
	}
	s.flushInvalidated()
	evs := []trace.Event{{Kind: trace.Access, VA: addr.GVA(prim.Start)}}
	if _, err := g.translateBlock(0, evs); err == nil {
		t.Fatal("access to unbacked page translated without error")
	} else if !strings.Contains(err.Error(), "nested fault") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestStatsIdentityViolationsDetected feeds checkStatsIdentities each
// of the four counter corruptions it guards against.
func TestStatsIdentityViolationsDetected(t *testing.T) {
	good := mmu.Stats{
		Accesses: 10, L1Hits: 6, L1Misses: 4,
		ZeroDWalks: 1, L2Hits: 1, Walks: 2,
		EscapeProbes: 2, EscapeTaken: 1,
		GuestFaults: 1, NestedFaults: 1,
	}
	if err := checkStatsIdentities("g", good); err != nil {
		t.Fatalf("consistent stats rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*mmu.Stats)
	}{
		{"accesses", func(st *mmu.Stats) { st.Accesses++ }},
		{"l1-misses", func(st *mmu.Stats) { st.ZeroDWalks++ }},
		{"escapes", func(st *mmu.Stats) { st.EscapeTaken = st.EscapeProbes + 1 }},
		{"faults", func(st *mmu.Stats) { st.GuestFaults = st.Walks + 1 }},
	}
	for _, c := range cases {
		st := good
		c.mutate(&st)
		if err := checkStatsIdentities("g", st); err == nil {
			t.Errorf("%s violation not detected", c.name)
		}
	}
}
