// Property tests over the host layer: the fragmentation curve is
// monotone in density (with churn fixed, a denser host can never
// create more direct segments), and the shared allocator's owner books
// stay exact under arbitrary policy-op sequences.

package host

import (
	"testing"

	"vdirect/internal/addr"
	"vdirect/internal/physmem"
)

// TestCreatableMonotoneInDensity fixes the host size and the churn
// seed and sweeps density: the number of still-creatable direct
// reservations must never increase as guests are added.
func TestCreatableMonotoneInDensity(t *testing.T) {
	base := testConfig(1)
	gs := base.GuestSize()
	hostMem := addr.AlignUp(4*gs+gs/2+(16<<20), addr.PageSize4K)

	prev := ^uint64(0)
	for density := 1; density <= 5; density++ {
		cfg := testConfig(density)
		cfg.HostMemory = hostMem
		cfg.SkipCrossCheck = true // covered elsewhere; keep the sweep fast
		s, err := NewSim(cfg)
		if err != nil {
			t.Fatalf("density %d: %v", density, err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatalf("density %d: %v", density, err)
		}
		if res.Creatable > prev {
			t.Fatalf("density %d: creatable segments rose %d -> %d", density, prev, res.Creatable)
		}
		prev = res.Creatable
		if density == 5 && res.Creatable != 0 {
			t.Errorf("density 5 on a 4.5-guest host still reports %d creatable runs", res.Creatable)
		}
	}
}

// TestOwnerAccountingUnderChurn admits guests, then runs a long policy
// op sequence, verifying after every op that (a) physmem's owner books
// sum exactly to the allocated-frame count, (b) every frame the VMM
// registry assigns to a VM carries that guest's owner stamp, and (c)
// each guest's stamped total equals its registered backing plus its
// nested table's pages.
func TestOwnerAccountingUnderChurn(t *testing.T) {
	cfg := tightConfig(3)
	s, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for op := 0; op < 200; op++ {
		if err := s.policyOp(); err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		if err := s.CheckAccounting(); err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		if err := checkFrameBooks(s); err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
	}
	// The allocator's own red-button check still passes after the
	// sequence, and replay still completes on the churned host.
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if err := checkFrameBooks(s); err != nil {
		t.Fatal(err)
	}
}

// checkFrameBooks cross-checks three independent sets of books: the
// allocator's per-owner stamp counts, the VMM's frame→(vm,gpa)
// registry, and each nested table's page count. Shared canonical
// frames are registered (and stamped) to the guest owning the
// canonical mapping, so the identity is exact.
func checkFrameBooks(s *Sim) error {
	for _, g := range s.Guests {
		stamped := s.Host.Mem.OwnerFrames(g.Owner())
		backed := g.VM.BackedFrames()
		tables := g.VM.NPT.TablePages()
		if stamped != backed+tables {
			return &bookError{g.Name, stamped, backed, tables}
		}
	}
	return nil
}

type bookError struct {
	guest                   string
	stamped, backed, tables uint64
}

func (e *bookError) Error() string {
	return "host: " + e.guest + ": stamped frames != backing + table pages " +
		"(see TestOwnerAccountingUnderChurn)"
}

// TestOwnersListed checks the allocator reports exactly the admitted
// guests (plus possibly OwnerNone) as owners.
func TestOwnersListed(t *testing.T) {
	cfg := testConfig(3)
	s, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := map[physmem.OwnerID]bool{}
	for _, g := range s.Guests {
		want[g.Owner()] = true
	}
	for _, o := range s.Host.Mem.Owners() {
		if o == physmem.OwnerNone {
			continue
		}
		if !want[o] {
			t.Errorf("unexpected owner %d", o)
		}
		delete(want, o)
	}
	for o := range want {
		t.Errorf("guest owner %d missing from allocator books", o)
	}
}
