// Shard-count independence: a host cell's full Result — per-guest
// statistics included — must be byte-identical at any Cfg.Shards.

package host

import (
	"reflect"
	"testing"
)

func runAtShards(t *testing.T, cfg Config, shards int) Result {
	t.Helper()
	cfg.Shards = shards
	s, err := NewSim(cfg)
	if err != nil {
		t.Fatalf("shards %d: %v", shards, err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("shards %d: %v", shards, err)
	}
	return res
}

func TestRunDeterministicAcrossShards(t *testing.T) {
	cfg := tightConfig(4)
	want := runAtShards(t, cfg, 1)
	for _, shards := range []int{2, 4, 8} {
		got := runAtShards(t, cfg, shards)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("result differs between 1 and %d shards:\n 1: %+v\n%2d: %+v",
				shards, want, shards, got)
		}
	}
}

func TestRunDeterministicRepeat(t *testing.T) {
	cfg := testConfig(2)
	a := runAtShards(t, cfg, 2)
	b := runAtShards(t, cfg, 2)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config, same shards, different results:\n%+v\n%+v", a, b)
	}
}
