// FuzzHostOps interleaves the host policy operations — balloon,
// hotplug, retirement, content stamping, sharing, CoW breaks,
// migration, plus mid-sequence guest admission — and checks, after
// every op, the three independent sets of frame books against each
// other (allocator owner stamps, VMM owner registry, nested-table page
// counts). It is the host-scale analogue of the physmem owner fuzz:
// the reference model here is the conjunction of per-layer books that
// cannot drift if and only if every op's accounting is exact.

package host

import (
	"testing"

	"vdirect/internal/addr"
	"vdirect/internal/workload"
)

// fuzzConfig is a deliberately tiny host so each fuzz case runs in
// milliseconds: two small tenants per guest, tight memory, no
// admission churn (the fuzzer drives all ops itself).
func fuzzConfig() Config {
	cfg := Config{
		Guests:          2,
		TenantsPerGuest: 2,
		Workload:        "gups",
		WL:              workload.Config{Seed: 1, MemoryMB: 2, Ops: 400},
		GuestHeadroom:   8 << 20,
		BalloonFloor:    4 << 20,
		Seed:            1,
		AdmitChurn:      -1,
		RoundChurn:      -1,
		SkipCrossCheck:  true,
	}
	return cfg
}

const fuzzMaxGuests = 4

func FuzzHostOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, uint64(1))
	f.Add([]byte{7, 7, 0, 0, 6, 6, 3, 4, 5, 2, 1}, uint64(42))
	f.Add([]byte{3, 3, 3, 4, 5, 5, 5, 7, 6, 0, 2}, uint64(7))
	f.Fuzz(func(t *testing.T, ops []byte, seed uint64) {
		if len(ops) > 64 {
			ops = ops[:64]
		}
		cfg := fuzzConfig()
		cfg.Seed = seed
		base := cfg.GuestSize()
		// Tight enough that admissions and migrations hit OOM paths.
		cfg.HostMemory = addr.AlignUp(base*5/2+(8<<20), addr.PageSize4K)
		s, err := NewSim(cfg)
		if err != nil {
			t.Skip() // overcommitted beyond even the tug-of-war
		}
		check := func(op int) {
			if err := s.CheckAccounting(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			if err := checkFrameBooks(s); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
		check(-1)
		for i, b := range ops {
			var err error
			switch b % 8 {
			case 0:
				err = s.opBalloon()
			case 1:
				err = s.opHotplug()
			case 2:
				err = s.opRetire()
			case 3:
				s.opContent()
			case 4:
				err = s.opShare()
			case 5:
				err = s.opCoWBreak()
			case 6:
				err = s.opMigrate()
			case 7:
				if len(s.Guests) < fuzzMaxGuests {
					// Admission may legitimately fail once the host is
					// squeezed dry; the books must still balance.
					_ = s.admit(len(s.Guests))
				}
			}
			s.flushInvalidated()
			if err != nil {
				t.Fatalf("op %d (%d): %v", i, b%8, err)
			}
			check(i)
		}
	})
}
