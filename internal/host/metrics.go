// Result types and end-of-run host metrics: the fragmentation curve
// (free-space shape plus how many more direct-segment reservations the
// host could still satisfy) and per-guest translation statistics with
// escape-filter cost.

package host

import (
	"fmt"

	"vdirect/internal/addr"
	"vdirect/internal/mmu"
	"vdirect/internal/perfmodel"
	"vdirect/internal/physmem"
)

// GuestResult is one guest's end-of-run report.
type GuestResult struct {
	Guest int
	Mode  mmu.Mode
	// Direct reports whether admission could still carve the contiguous
	// host run a VMM segment needs.
	Direct bool

	Accesses   uint64
	WalkCycles uint64
	// Overhead is walk cycles over ideal execution cycles (§VIII).
	Overhead float64
	Stats    mmu.Stats

	// EscapedPages is the exact count of pages host services pushed
	// into the guest's VMM escape filter; EscapeProbes/EscapeTaken are
	// the measured filter traffic (taken minus members ≈ Bloom false
	// positives).
	EscapedPages int

	// OwnerFrames is the host-frame count attributed to the guest by
	// the allocator's owner accounting (backing + nested-table pages).
	OwnerFrames uint64

	// Policy-op counters.
	Balloons, Hotplugs, Retires, SharedIn, CoWBreaks, Migrations uint64
}

// Result is one whole-host cell's report.
type Result struct {
	Density int
	// DirectGuests is how many guests were admitted Dual Direct before
	// the host ran out of contiguous runs — the knee coordinate.
	DirectGuests int
	Guests       []GuestResult

	// Frag is the host free-space shape at end of run; Creatable is how
	// many more guest-sized direct reservations the allocator could
	// still satisfy (0 = past the knee).
	Frag      physmem.FragReport
	Creatable uint64

	// Aggregate overhead across guests, and the worst single guest —
	// the noisy-neighbour view.
	Overhead   float64
	WorstGuest float64

	// EscapeProbes/EscapeTaken summed over guests: the escape-filter
	// cost of density.
	EscapeProbes, EscapeTaken uint64
}

// collect builds the Result from the finished simulation. Stats are
// captured before the cross-check so its probe traffic never shows up
// in reported counters.
func (s *Sim) collect() Result {
	res := Result{Density: len(s.Guests)}
	worst := 0.0
	var totalAccesses, totalCycles uint64
	for _, g := range s.Guests {
		st := g.MMU.Stats()
		var accesses uint64
		for _, a := range g.accesses {
			accesses += a
		}
		ideal := float64(accesses) * s.baseCPI
		gr := GuestResult{
			Guest:        g.Index,
			Mode:         g.Mode,
			Direct:       g.Direct,
			Accesses:     accesses,
			WalkCycles:   g.walkCycles,
			Overhead:     perfmodel.Overhead(float64(g.walkCycles), ideal),
			Stats:        st,
			EscapedPages: len(g.escaped),
			OwnerFrames:  s.Host.Mem.OwnerFrames(g.Owner()),
			Balloons:     g.Balloons,
			Hotplugs:     g.Hotplugs,
			Retires:      g.Retires,
			SharedIn:     g.SharedIn,
			CoWBreaks:    g.CoWBreaks,
			Migrations:   g.Migrations,
		}
		if g.Direct {
			res.DirectGuests++
		}
		if gr.Overhead > worst {
			worst = gr.Overhead
		}
		totalAccesses += accesses
		totalCycles += g.walkCycles
		res.EscapeProbes += st.EscapeProbes
		res.EscapeTaken += st.EscapeTaken
		res.Guests = append(res.Guests, gr)
	}
	res.Overhead = perfmodel.Overhead(float64(totalCycles), float64(totalAccesses)*s.baseCPI)
	res.WorstGuest = worst
	res.Frag = s.Host.Mem.FragStats()
	// Cap the trial allocation by host capacity (not density — the cap
	// must be identical across a density sweep for the curve to be
	// comparable).
	res.Creatable = s.Host.Mem.ProbeContiguous(
		s.guestSize>>addr.PageShift4K, 1, s.Cfg.HostMemory/s.guestSize+1)
	return res
}

// CheckAccounting verifies the shared allocator's owner books and the
// cross-layer frame-attribution invariant: every frame the VMM's owner
// registry assigns to a VM is stamped, in physmem, with that VM's
// guest owner (canonical copy-on-write frames count toward the guest
// that owns the canonical mapping).
func (s *Sim) CheckAccounting() error {
	if err := s.Host.Mem.CheckOwnerAccounting(); err != nil {
		return err
	}
	for f := uint64(0); f < s.Host.Mem.Frames(); f++ {
		vm, _, ok := s.Host.OwnerVM(f)
		if !ok {
			continue
		}
		g := s.byVM[vm]
		if g == nil {
			return fmt.Errorf("host: frame %d registered to unknown VM %s", f, vm.Name)
		}
		owner, tracked := s.Host.Mem.FrameOwner(f)
		if !tracked {
			return fmt.Errorf("host: frame %d registered to %s but not allocated", f, g.Name)
		}
		if owner != g.Owner() {
			return fmt.Errorf("host: frame %d backs %s but is stamped owner %d", f, g.Name, owner)
		}
	}
	return nil
}
