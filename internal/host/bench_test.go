package host

import (
	"testing"

	"vdirect/internal/addr"
	"vdirect/internal/workload"
)

// BenchmarkHostQuantum measures one consolidated-host cell end to end:
// four guests × two tenants admitted on a tight host, replayed to
// completion with policy churn at every barrier. This is the number
// benchgate tracks for the host layer.
func BenchmarkHostQuantum(b *testing.B) {
	cfg := Config{
		Guests:          4,
		TenantsPerGuest: 2,
		Workload:        "gups",
		WL:              workload.Config{Seed: 1, MemoryMB: 8, Ops: 12000},
		GuestHeadroom:   24 << 20,
		BalloonFloor:    12 << 20,
		Seed:            42,
		SkipCrossCheck:  true,
	}
	gs := cfg.GuestSize()
	cfg.HostMemory = addr.AlignUp(3*gs+gs/2+(16<<20), addr.PageSize4K)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := NewSim(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
