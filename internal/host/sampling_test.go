// Walk sampling over a consolidated host: the per-guest dimension of
// the walkprof profile. Each guest gets a private stride sampler keyed
// (cell, guest index), driven only by that guest's miss stream, so the
// encoded sample file is byte-identical at any shard count — and its
// tenant axis attributes §VII miss classes guest by guest.

package host

import (
	"bytes"
	"testing"

	"vdirect/internal/telemetry/walkprof"
)

// sampledHostBytes runs one tight 3-guest cell with 1-in-16 sampling
// at the given shard count and returns the encoded sample file.
func sampledHostBytes(t *testing.T, shards int) []byte {
	t.Helper()
	p := walkprof.Enable(16)
	defer p.Stop()
	cfg := tightConfig(3)
	cfg.Shards = shards
	s, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	d := p.Snapshot()
	if d.NumSamples() == 0 {
		t.Fatal("sampling enabled but no samples collected")
	}
	var buf bytes.Buffer
	if err := walkprof.Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestHostSamplingPerGuest checks the guest dimension: one sampler
// stream per admitted guest, all labeled with the host cell's name and
// the guest index as the tenant, and the §VII class attribution groups
// rows per guest.
func TestHostSamplingPerGuest(t *testing.T) {
	p := walkprof.Enable(16)
	defer p.Stop()
	cfg := tightConfig(3)
	s, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	d := p.Snapshot()
	guests := map[int]bool{}
	for _, c := range d.Cells {
		if c.Cell != s.Cfg.Name {
			t.Errorf("sample cell %q, want %q", c.Cell, s.Cfg.Name)
		}
		guests[c.Tenant] = true
	}
	for i := range s.Guests {
		if !guests[i] {
			t.Errorf("no sample stream for guest %d", i)
		}
	}
	byGuest := map[int]int{}
	for _, a := range walkprof.ClassAttribution(d) {
		byGuest[a.Tenant]++
	}
	for i, g := range s.Guests {
		if byGuest[i] == 0 && g.MMU.Stats().L1Misses > 0 {
			t.Errorf("guest %d has misses but no class attribution rows", i)
		}
	}
}

// TestHostSamplingDeterministicAcrossShards is the sample-file half of
// the host determinism contract: byte-identical dumps at 1 and 4
// shards.
func TestHostSamplingDeterministicAcrossShards(t *testing.T) {
	serial := sampledHostBytes(t, 1)
	sharded := sampledHostBytes(t, 4)
	if !bytes.Equal(serial, sharded) {
		t.Fatalf("sample files differ between 1 shard (%d bytes) and 4 shards (%d bytes)",
			len(serial), len(sharded))
	}
}
