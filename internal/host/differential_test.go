// The host-scale differential suite: every guest of a four-guest
// consolidated host is mirrored in the oracle's flat reference model,
// per-guest counter identities must hold, and the dimensional ordering
// Dual ≤ VMM ≤ Base survives the address streams the churned host
// actually produced.

package host

import (
	"testing"

	"vdirect/internal/addr"
	"vdirect/internal/oracle"
	"vdirect/internal/trace"
	"vdirect/internal/workload"
)

// tightConfig sizes the host so a four-guest admission crosses the
// fragmentation knee: early guests get Dual Direct, later ones fall
// back to Base Virtualized over scattered frames.
func tightConfig(density int) Config {
	cfg := testConfig(density)
	gs := cfg.GuestSize()
	// Contiguous runs for all but the last guest, plus half a guest of
	// slack: the final admission must fall back to scattered frames.
	cfg.HostMemory = addr.AlignUp(uint64(density-1)*gs+gs/2+(16<<20), addr.PageSize4K)
	return cfg
}

func TestHostDifferentialFourGuests(t *testing.T) {
	cfg := tightConfig(4)
	s, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run() // Run cross-checks every guest against the oracle
	if err != nil {
		t.Fatal(err)
	}

	if res.DirectGuests == 0 {
		t.Error("tight host admitted no Dual Direct guest; knee config broken")
	}
	if res.DirectGuests == 4 {
		t.Error("tight host admitted every guest Dual Direct; no contention modeled")
	}

	// Per-guest identities, asserted here explicitly (Run also enforces
	// them, but the test should fail loudly on its own).
	for _, g := range s.Guests {
		if err := checkStatsIdentities(g.Name, g.MMU.Stats()); err != nil {
			t.Error(err)
		}
		st := g.MMU.Stats()
		if st.Accesses == 0 {
			t.Errorf("%s: no accesses", g.Name)
		}
		if g.Direct && st.SegmentChecks == 0 {
			t.Errorf("%s: direct guest made no segment checks", g.Name)
		}
		if !g.Direct && st.NestedWalks == 0 && st.NestedTLBHits == 0 {
			t.Errorf("%s: paging guest exercised no nested dimension", g.Name)
		}
	}

	// A second, explicit cross-check after the run's own (the state is
	// stable once replay and churn are done, so this must still hold).
	if err := s.CrossCheck(); err != nil {
		t.Fatal(err)
	}

	// Dimensional ordering over the streams this host produced: sample
	// each guest's tenant address space and require Dual ≤ VMM ≤ Base
	// on the same trace.
	rng := trace.NewRand(7)
	var vas []uint64
	for _, g := range s.Guests {
		for _, w := range g.workloads {
			prim := w.PrimaryRegion()
			for i := 0; i < 64; i++ {
				vas = append(vas, prim.Start+rng.Uint64n(prim.Size))
			}
		}
	}
	if err := oracle.CheckModeMonotonicity(vas); err != nil {
		t.Fatal(err)
	}
}

// TestEscapeFilterCostAtDensity checks the §V story the host layer
// exists to measure: host services (ballooning, retirement) on a
// segment guest show up as escape-filter traffic.
func TestEscapeFilterCostAtDensity(t *testing.T) {
	cfg := tightConfig(4)
	cfg.Seed = 99
	s, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.EscapeProbes == 0 {
		t.Fatal("no escape probes: segment guests never consulted the filter")
	}
	var escaped int
	for _, g := range res.Guests {
		if g.Direct {
			escaped += g.EscapedPages
		} else if g.EscapedPages != 0 {
			t.Errorf("guest %d has escaped pages without a segment", g.Guest)
		}
	}
	if escaped == 0 {
		t.Error("churn produced no escaped pages on any segment guest")
	}
}

// TestBalloonTugOfWar drives admission past what free host memory can
// back, requiring the host to squeeze earlier guests.
func TestBalloonTugOfWar(t *testing.T) {
	cfg := testConfig(3)
	gs := cfg.GuestSize()
	// Fits two guests comfortably; the third only if earlier guests
	// give memory back.
	cfg.HostMemory = addr.AlignUp(gs*5/2+gs/4+(32<<20), addr.PageSize4K)
	s, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var balloons uint64
	for _, g := range s.Guests {
		balloons += g.Balloons
	}
	if balloons == 0 {
		t.Fatal("no guest was ballooned during overcommitted admission")
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestWorkloadsExist pins the workload names the suite depends on.
func TestWorkloadsExist(t *testing.T) {
	for _, name := range []string{"gups", "memcached"} {
		if !workload.Exists(name) {
			t.Fatalf("workload %q missing", name)
		}
	}
}
