package guestos

import (
	"errors"
	"testing"

	"vdirect/internal/addr"
	"vdirect/internal/physmem"
	"vdirect/internal/trace"
)

// fakeVMM implements VMMBackend over the guest memory itself.
type fakeVMM struct {
	mem       *physmem.Memory
	ballooned []uint64
	removed   []addr.Range
	added     []addr.Range
	failAdd   bool
}

func (f *fakeVMM) Balloon(frames []uint64) error {
	f.ballooned = append(f.ballooned, frames...)
	return nil
}

func (f *fakeVMM) HotplugAdd(size uint64) (addr.Range, error) {
	if f.failAdd {
		return addr.Range{}, errors.New("fake: no host memory")
	}
	r, err := f.mem.Grow(size)
	if err != nil {
		return addr.Range{}, err
	}
	f.added = append(f.added, r)
	return r, nil
}

func (f *fakeVMM) HotplugRemove(r addr.Range) error {
	f.removed = append(f.removed, r)
	return nil
}

func newKernel(t *testing.T, sizeMB uint64, gap bool) (*Kernel, *fakeVMM) {
	t.Helper()
	mem := physmem.New(physmem.Config{Name: "guest", Size: sizeMB << 20, IOGap: gap})
	vmm := &fakeVMM{mem: mem}
	return NewKernel(mem, vmm), vmm
}

func TestCreateProcessAndMMap(t *testing.T) {
	k, _ := newKernel(t, 64, false)
	p, err := k.CreateProcess("app")
	if err != nil {
		t.Fatal(err)
	}
	base, err := p.MMap(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if base%addr.PageSize2M != 0 {
		t.Errorf("mmap base %#x not 2M aligned", base)
	}
	base2, _ := p.MMap(1 << 20)
	if base2 <= base {
		t.Error("second mmap overlaps first")
	}
	if len(p.Regions()) != 2 {
		t.Errorf("regions = %d", len(p.Regions()))
	}
	if len(k.Processes()) != 1 {
		t.Error("process not registered")
	}
}

func TestDemandPaging(t *testing.T) {
	k, _ := newKernel(t, 64, false)
	p, _ := k.CreateProcess("app")
	base, _ := p.MMap(1 << 20)
	if err := p.HandleFault(base + 0x5123); err != nil {
		t.Fatal(err)
	}
	gpa, s, ok := p.PT.Translate(base + 0x5123)
	if !ok || s != addr.Page4K {
		t.Fatal("fault did not map page")
	}
	if gpa&0xfff != 0x123 {
		t.Errorf("offset lost: %#x", gpa)
	}
	// Fault outside any region is rejected.
	if err := p.HandleFault(0x10); err != ErrOutsideVA {
		t.Errorf("wild fault err = %v", err)
	}
}

func TestPrimaryRegionBacked(t *testing.T) {
	k, _ := newKernel(t, 64, false)
	p, _ := k.CreateProcess("bigmem")
	r, err := p.CreatePrimaryRegion(16 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if r.Start%addr.PageSize1G != 0 {
		t.Errorf("primary region base %#x not 1G aligned", r.Start)
	}
	if !p.Seg.Enabled() {
		t.Fatal("segment not programmed")
	}
	if p.Seg.Range() != r {
		t.Errorf("segment covers %v, want %v", p.Seg.Range(), r)
	}
	// The backing gPA range must really be allocated.
	gpaBase := p.Seg.Translate(r.Start)
	if !k.Mem.IsAllocated(physmem.AddrToFrame(gpaBase)) {
		t.Error("backing frames not allocated")
	}
	if pr := p.PrimaryRegion(); pr != r {
		t.Errorf("PrimaryRegion = %v", pr)
	}
}

func TestPrimaryRegionFragmented(t *testing.T) {
	k, _ := newKernel(t, 32, false)
	r := trace.NewRand(1)
	k.Mem.FragmentRandomly(0.6, r.Uint64n)
	p, _ := k.CreateProcess("bigmem")
	_, err := p.CreatePrimaryRegion(8 << 20)
	if err != ErrFragmented {
		t.Fatalf("err = %v, want ErrFragmented", err)
	}
	if p.Seg.Enabled() {
		t.Error("segment programmed despite fragmentation")
	}
	// Virtual region still exists: paging path works.
	if err := p.HandleFault(p.PrimaryRegion().Start); err != nil {
		t.Errorf("paging fallback fault failed: %v", err)
	}
}

func TestSelfBallooning(t *testing.T) {
	// The Figure 9 scenario: fragmented guest memory, then self-balloon
	// produces a contiguous range without compaction.
	k, vmm := newKernel(t, 32, false)
	r := trace.NewRand(2)
	k.Mem.FragmentRandomly(0.6, r.Uint64n)
	p, _ := k.CreateProcess("bigmem")
	if _, err := p.CreatePrimaryRegion(8 << 20); err != ErrFragmented {
		t.Fatalf("precondition: %v", err)
	}
	freeBefore := k.Mem.FreeFrames()
	newRange, err := k.SelfBalloon(8<<20, r.Uint64n)
	if err != nil {
		t.Fatal(err)
	}
	if newRange.Size != 8<<20 {
		t.Errorf("hotplugged %v", newRange)
	}
	// Memory-neutral: ballooned out exactly what was added.
	if got := uint64(len(vmm.ballooned)) << 12; got != 8<<20 {
		t.Errorf("ballooned %d bytes, want %d", got, 8<<20)
	}
	if k.Mem.FreeFrames() != freeBefore {
		t.Errorf("free frames changed: %d -> %d", freeBefore, k.Mem.FreeFrames())
	}
	// The new range must back a segment now.
	if err := p.BackPrimaryRegion(); err != nil {
		t.Fatalf("BackPrimaryRegion after self-balloon: %v", err)
	}
	if !p.Seg.Enabled() {
		t.Error("segment still disabled")
	}
	if got := k.BalloonedFrames(); uint64(len(got))<<12 != 8<<20 {
		t.Errorf("BalloonedFrames = %d", len(got))
	}
}

func TestSelfBalloonInsufficientFree(t *testing.T) {
	k, _ := newKernel(t, 8, false)
	r := trace.NewRand(3)
	k.Mem.FragmentRandomly(0.95, r.Uint64n)
	if _, err := k.SelfBalloon(16<<20, r.Uint64n); err == nil {
		t.Fatal("self-balloon succeeded without free memory")
	}
}

func TestSelfBalloonNoBackend(t *testing.T) {
	mem := physmem.New(physmem.Config{Name: "native", Size: 8 << 20})
	k := NewKernel(mem, nil)
	if _, err := k.SelfBalloon(1<<20, nil); err != ErrBackendMissing {
		t.Errorf("err = %v", err)
	}
	if _, err := k.ReclaimIOGap(256 << 20); err != ErrBackendMissing {
		t.Errorf("err = %v", err)
	}
}

func TestReclaimIOGap(t *testing.T) {
	// 5GB guest with I/O gap: 3GB low + 1GB high usable. After
	// reclamation with 256MB keep: low usable = 256MB, and a new
	// contiguous high range of (3GB-256MB) appears at the top.
	k, vmm := newKernel(t, 5<<10, true)
	usableBefore := k.Mem.UsableFrames()
	newRange, err := k.ReclaimIOGap(256 << 20)
	if err != nil {
		t.Fatal(err)
	}
	wantSize := uint64(3<<30) - 256<<20
	if newRange.Size != wantSize {
		t.Errorf("new range size = %#x, want %#x", newRange.Size, wantSize)
	}
	if newRange.Start != 5<<30 {
		t.Errorf("new range start = %#x, want end of old space", newRange.Start)
	}
	if k.Mem.UsableFrames() != usableBefore {
		t.Errorf("usable frames changed: %d -> %d", usableBefore, k.Mem.UsableFrames())
	}
	// The largest free run should now be [4GB, end): 1GB original high
	// memory + the reclaimed extension, contiguous.
	start, length := k.Mem.LargestFreeRun()
	if physmem.FrameToAddr(start) != addr.IOGapEnd {
		t.Errorf("largest run starts %#x, want %#x", physmem.FrameToAddr(start), addr.IOGapEnd)
	}
	wantRun := (uint64(1)<<30 + wantSize) >> 12
	if length != wantRun {
		t.Errorf("largest run = %d frames, want %d", length, wantRun)
	}
	if k.KernelReserve().Size != 256<<20 {
		t.Errorf("kernel reserve = %v", k.KernelReserve())
	}
	if len(vmm.removed) != 1 || len(vmm.added) != 1 {
		t.Errorf("VMM saw %d removes, %d adds", len(vmm.removed), len(vmm.added))
	}
}

func TestReclaimIOGapKeepTooLarge(t *testing.T) {
	k, _ := newKernel(t, 5<<10, true)
	if _, err := k.ReclaimIOGap(3 << 30); err == nil {
		t.Fatal("keep >= gap start accepted")
	}
}

func TestEmulatedSegmentFaultPath(t *testing.T) {
	// §VI.B: with emulation, faults inside the segment install computed
	// PTEs; the translation equals what hardware would produce.
	k, _ := newKernel(t, 64, false)
	p, _ := k.CreateProcess("emul")
	p.EmulateSegment = true
	r, err := p.CreatePrimaryRegion(4 << 20)
	if err != nil {
		t.Fatal(err)
	}
	va := r.Start + 0x12345
	if err := p.HandleFault(va); err != nil {
		t.Fatal(err)
	}
	gpa, _, ok := p.PT.Translate(va)
	if !ok {
		t.Fatal("emulated fault did not map")
	}
	if gpa != p.Seg.Translate(va) {
		t.Errorf("emulated PTE %#x != segment translation %#x", gpa, p.Seg.Translate(va))
	}
	// Hardware mode: such a fault is a bug.
	p.EmulateSegment = false
	if err := p.HandleFault(r.Start + 0x20000); err == nil {
		t.Error("hardware-mode in-segment fault not rejected")
	}
}

func TestPrefault(t *testing.T) {
	k, _ := newKernel(t, 64, false)
	p, _ := k.CreateProcess("app")
	base, _ := p.MMap(64 << 10)
	if err := p.Prefault(addr.Range{Start: base, Size: 64 << 10}); err != nil {
		t.Fatal(err)
	}
	for va := base; va < base+64<<10; va += 4096 {
		if _, _, ok := p.PT.Translate(va); !ok {
			t.Fatalf("page %#x not prefaulted", va)
		}
	}
	// Idempotent.
	if err := p.Prefault(addr.Range{Start: base, Size: 64 << 10}); err != nil {
		t.Fatal(err)
	}
	// Prefault over a hardware segment installs nothing.
	ps, _ := k.CreateProcess("seg")
	r, err := ps.CreatePrimaryRegion(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Prefault(r); err != nil {
		t.Fatal(err)
	}
	if ps.PT.Mappings() != 0 {
		t.Error("prefault installed PTEs under segment hardware")
	}
}

func TestEscapeBadPages(t *testing.T) {
	k, _ := newKernel(t, 64, false)
	p, _ := k.CreateProcess("bigmem")
	r, err := p.CreatePrimaryRegion(4 << 20)
	if err != nil {
		t.Fatal(err)
	}
	segBase := p.Seg.Translate(r.Start)
	bad := []uint64{segBase + 0x3000, segBase + 0x10000}
	var filtered []uint64
	remaps, err := p.EscapeBadPages(bad, func(pfn uint64) { filtered = append(filtered, pfn) })
	if err != nil {
		t.Fatal(err)
	}
	if len(remaps) != 2 || len(filtered) != 2 {
		t.Fatalf("remaps=%d filtered=%d", len(remaps), len(filtered))
	}
	for _, rm := range remaps {
		if !k.Mem.IsBad(physmem.AddrToFrame(rm.OldGPA)) {
			t.Error("bad frame not marked")
		}
		gpa, _, ok := p.PT.Translate(rm.GVA)
		if !ok || gpa != rm.NewGPA {
			t.Errorf("escaped page not remapped: %#x -> %#x (want %#x)", rm.GVA, gpa, rm.NewGPA)
		}
		if rm.NewGPA == rm.OldGPA {
			t.Error("remap points at the bad frame")
		}
	}
	// Without a segment the call is rejected.
	p2, _ := k.CreateProcess("noseg")
	if _, err := p2.EscapeBadPages(bad, func(uint64) {}); err != ErrNoPrimary {
		t.Errorf("err = %v", err)
	}
}

func TestMapFalsePositive(t *testing.T) {
	k, _ := newKernel(t, 64, false)
	p, _ := k.CreateProcess("bigmem")
	r, err := p.CreatePrimaryRegion(4 << 20)
	if err != nil {
		t.Fatal(err)
	}
	va := r.Start + 0x42000
	if err := p.MapFalsePositive(va); err != nil {
		t.Fatal(err)
	}
	gpa, _, ok := p.PT.Translate(va)
	if !ok || gpa != addr.PageBase(p.Seg.Translate(va), addr.Page4K) {
		t.Errorf("false-positive mapping wrong: %#x", gpa)
	}
	// Idempotent (the VMM may map the same FP twice).
	if err := p.MapFalsePositive(va); err != nil {
		t.Errorf("second MapFalsePositive: %v", err)
	}
	if err := p.MapFalsePositive(0x100); err != ErrNoPrimary {
		t.Errorf("outside-segment err = %v", err)
	}
}

func TestHotplugAddFailureSurfaces(t *testing.T) {
	k, vmm := newKernel(t, 32, false)
	vmm.failAdd = true
	r := trace.NewRand(4)
	if _, err := k.SelfBalloon(4<<20, r.Uint64n); err == nil {
		t.Fatal("self-balloon swallowed backend failure")
	}
}
