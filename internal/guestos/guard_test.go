package guestos

import (
	"testing"
)

func TestGuardPages(t *testing.T) {
	k, _ := newKernel(t, 64, false)
	p, _ := k.CreateProcess("guarded")
	r, err := p.CreatePrimaryRegion(4 << 20)
	if err != nil {
		t.Fatal(err)
	}
	guard := r.Start + 0x40000
	var inserted []struct{ va, pa uint64 }
	err = p.GuardPages([]uint64{guard}, func(vaPFN, paPFN uint64) {
		inserted = append(inserted, struct{ va, pa uint64 }{vaPFN, paPFN})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(inserted) != 1 {
		t.Fatalf("inserted = %d", len(inserted))
	}
	if inserted[0].va != guard>>12 {
		t.Errorf("va pfn = %#x", inserted[0].va)
	}
	if inserted[0].pa != p.Seg.Translate(guard)>>12 {
		t.Errorf("pa pfn = %#x", inserted[0].pa)
	}
	// The guard page must not be mapped: the fault is the feature.
	if _, _, ok := p.PT.Translate(guard); ok {
		t.Error("guard page mapped")
	}
	if !p.GuardPageHit(guard + 0x123) {
		t.Error("GuardPageHit missed the armed page")
	}
	if p.GuardPageHit(r.Start) {
		t.Error("GuardPageHit false positive")
	}
}

func TestGuardPagesRequireSegment(t *testing.T) {
	k, _ := newKernel(t, 64, false)
	p, _ := k.CreateProcess("plain")
	if err := p.GuardPages([]uint64{0x1000}, func(uint64, uint64) {}); err != ErrNoPrimary {
		t.Errorf("err = %v", err)
	}
	p2, _ := k.CreateProcess("seg")
	if _, err := p2.CreatePrimaryRegion(1 << 20); err != nil {
		t.Fatal(err)
	}
	if err := p2.GuardPages([]uint64{0x1000}, func(uint64, uint64) {}); err == nil {
		t.Error("guard outside segment accepted")
	}
}
