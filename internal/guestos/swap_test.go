package guestos

import (
	"errors"
	"testing"

	"vdirect/internal/addr"
)

func TestGuestSwapRoundTrip(t *testing.T) {
	k, _ := newKernel(t, 64, false)
	p, _ := k.CreateProcess("app")
	base, _ := p.MMap(256 << 10)
	r := addr.Range{Start: base, Size: 256 << 10}
	if err := p.Prefault(r); err != nil {
		t.Fatal(err)
	}
	freeBefore := k.Mem.FreeFrames()
	n, err := p.SwapOut(r)
	if err != nil || n != 64 {
		t.Fatalf("swap out: n=%d err=%v", n, err)
	}
	// 64 data frames come back, plus any page-table pages the unmaps
	// emptied.
	if k.Mem.FreeFrames() < freeBefore+64 {
		t.Error("frames not reclaimed")
	}
	if p.SwappedPages() != 64 {
		t.Errorf("swapped = %d", p.SwappedPages())
	}
	// Faulting a swapped page swaps it back in.
	if err := p.HandleFault(base + 0x3123); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := p.PT.Translate(base + 0x3123); !ok {
		t.Fatal("swap-in did not map")
	}
	if p.SwapIns() != 1 || p.SwappedPages() != 63 {
		t.Errorf("counters: ins=%d swapped=%d", p.SwapIns(), p.SwappedPages())
	}
	// Swapping an unmapped range is a no-op.
	if n, err := p.SwapOut(addr.Range{Start: base + 0x3000, Size: 0x1000}); err != nil || n != 1 {
		// page 3 was just swapped in, so it swaps out again
		t.Errorf("re-swap: n=%d err=%v", n, err)
	}
}

func TestGuestSwapPinnedBySegment(t *testing.T) {
	// Table II: guest swapping is limited in Dual/Guest Direct — the
	// segment-covered primary region is pinned.
	k, _ := newKernel(t, 64, false)
	p, _ := k.CreateProcess("bigmem")
	r, err := p.CreatePrimaryRegion(8 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.SwapOut(addr.Range{Start: r.Start, Size: 1 << 20}); !errors.Is(err, ErrPinnedBySegment) {
		t.Fatalf("err = %v, want ErrPinnedBySegment", err)
	}
	// Non-segment memory still swaps (VMM Direct's "unrestricted" row).
	base, _ := p.MMap(64 << 10)
	if err := p.Prefault(addr.Range{Start: base, Size: 64 << 10}); err != nil {
		t.Fatal(err)
	}
	if n, err := p.SwapOut(addr.Range{Start: base, Size: 64 << 10}); err != nil || n != 16 {
		t.Fatalf("non-segment swap: n=%d err=%v", n, err)
	}
}
