package guestos

import (
	"testing"

	"vdirect/internal/addr"
	"vdirect/internal/mmu"
	"vdirect/internal/physmem"
)

// schedEnv builds a native kernel with two processes, each owning a
// segment-backed primary region, plus one MMU.
func schedEnv(t *testing.T) (*Kernel, []*Process, *mmu.MMU) {
	t.Helper()
	mem := physmem.New(physmem.Config{Name: "m", Size: 256 << 20})
	k := NewKernel(mem, nil)
	var procs []*Process
	for i := 0; i < 2; i++ {
		p, err := k.CreateProcess("p")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.CreatePrimaryRegion(16 << 20); err != nil {
			t.Fatal(err)
		}
		procs = append(procs, p)
	}
	hw := mmu.New(mmu.Config{})
	return k, procs, hw
}

func TestSchedulerSwitchesSegments(t *testing.T) {
	k, procs, hw := schedEnv(t)
	_ = k
	s := NewScheduler(k, procs)
	if s.Current() != nil {
		t.Error("process running before first switch")
	}
	if err := s.Next(hw); err != nil {
		t.Fatal(err)
	}
	if s.Current() != procs[0] {
		t.Error("round robin broken")
	}
	if hw.GuestSegment() != procs[0].Seg {
		t.Error("segment registers not installed")
	}
	// Both processes use the same primary-region VA; the hardware must
	// translate it per the *current* process's segment.
	va := procs[0].PrimaryRegion().Start + 0x123
	r0, fault := hw.Translate(va)
	if fault != nil {
		t.Fatal(fault)
	}
	if err := s.Next(hw); err != nil {
		t.Fatal(err)
	}
	if hw.GuestSegment() != procs[1].Seg {
		t.Error("segment registers not switched")
	}
	r1, fault := hw.Translate(va)
	if fault != nil {
		t.Fatal(fault)
	}
	if r0.HPA == r1.HPA {
		t.Error("two processes translated the shared VA identically")
	}
	if s.Switches() != 2 {
		t.Errorf("switches = %d", s.Switches())
	}
}

func TestSchedulerASIDKeepsEntriesWarm(t *testing.T) {
	run := func(useASID bool) uint64 {
		k, procs, hw := schedEnv(t)
		s := NewScheduler(k, procs)
		s.UseASID = useASID
		// Each process touches pages OUTSIDE its segment (ordinary
		// paged memory) so TLB entries matter.
		var bases []uint64
		for _, p := range procs {
			base, _ := p.MMap(64 << 10)
			if err := p.Prefault(addr.Range{Start: base, Size: 64 << 10}); err != nil {
				t.Fatal(err)
			}
			bases = append(bases, base)
		}
		for slice := 0; slice < 8; slice++ {
			if err := s.Next(hw); err != nil {
				t.Fatal(err)
			}
			base := bases[slice%2]
			for off := uint64(0); off < 64<<10; off += 4096 {
				if _, fault := hw.Translate(base + off); fault != nil {
					t.Fatal(fault)
				}
			}
		}
		return hw.Stats().Walks
	}
	flush := run(false)
	tagged := run(true)
	if tagged >= flush {
		t.Errorf("ASID scheduling did not reduce walks: %d vs %d", tagged, flush)
	}
}

func TestSchedulerEmpty(t *testing.T) {
	mem := physmem.New(physmem.Config{Name: "m", Size: 16 << 20})
	k := NewKernel(mem, nil)
	s := NewScheduler(k, nil)
	if err := s.Next(mmu.New(mmu.Config{})); err != ErrNoRunnable {
		t.Errorf("err = %v", err)
	}
}
