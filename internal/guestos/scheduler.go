// A round-robin scheduler for multiprogrammed guests. Its job in this
// reproduction is the §III requirement that "the guest segment register
// values are set per guest process and must be set during guest OS
// context switches": each switch saves the outgoing process's segment
// registers and installs the incoming one's, either flushing the TLBs
// (the evaluated 2014-era machine) or retagging them (the PCID/ASID
// extension).

package guestos

import (
	"errors"

	"vdirect/internal/mmu"
)

// ErrNoRunnable is returned when the scheduler has no processes.
var ErrNoRunnable = errors.New("guestos: no runnable processes")

// Scheduler round-robins processes on one hardware context.
type Scheduler struct {
	kernel *Kernel
	procs  []*Process
	// UseASID selects tagged context switches instead of flushes.
	UseASID bool

	current  int
	switches uint64
}

// NewScheduler creates a scheduler over the kernel's processes.
func NewScheduler(k *Kernel, procs []*Process) *Scheduler {
	return &Scheduler{kernel: k, procs: procs, current: -1}
}

// Current returns the running process (nil before the first switch).
func (s *Scheduler) Current() *Process {
	if s.current < 0 {
		return nil
	}
	return s.procs[s.current]
}

// Switches returns how many context switches have occurred.
func (s *Scheduler) Switches() uint64 { return s.switches }

// SwitchTo dispatches process index i on the MMU: the guest page table
// root (CR3) and the guest segment registers change together, per §III.
func (s *Scheduler) SwitchTo(i int, hw *mmu.MMU) error {
	if len(s.procs) == 0 {
		return ErrNoRunnable
	}
	i %= len(s.procs)
	p := s.procs[i]
	if s.UseASID {
		// ASIDs are 1-based; 0 is reserved for the pre-scheduler state.
		hw.ContextSwitchASID(p.PT, p.Seg, uint16(i)+1)
	} else {
		hw.ContextSwitch(p.PT, p.Seg)
	}
	s.current = i
	s.switches++
	return nil
}

// Next dispatches the next process in round-robin order.
func (s *Scheduler) Next(hw *mmu.MMU) error {
	return s.SwitchTo(s.current+1, hw)
}
