// Guest swapping (Table II): the guest OS can reclaim memory by paging
// application pages out to a swap device. Pages mapped by a live guest
// direct segment are pinned — they have no PTE to invalidate and their
// frames back the segment arithmetic — so segment-covered memory cannot
// swap while the segment is enabled ("limited" in Table II for Dual and
// Guest Direct); everything mapped through the page table swaps freely.

package guestos

import (
	"errors"
	"fmt"

	"vdirect/internal/addr"
	"vdirect/internal/physmem"
)

// ErrPinnedBySegment is returned when swapping targets segment-covered
// pages.
var ErrPinnedBySegment = errors.New("guestos: page pinned by a live direct segment")

// swapSlot marks a virtual page as resident on the swap device.
type swapSlot struct{}

// SwapOut pages out every mapped 4K page of the range: the PTE is
// removed, the frame freed, and the page recorded on the swap device.
// The caller must invalidate the TLB for the range. Returns the number
// of pages swapped.
func (p *Process) SwapOut(r addr.Range) (int, error) {
	if p.Seg.Enabled() && p.Seg.Range().Overlaps(r) {
		return 0, fmt.Errorf("%w: %v overlaps segment %v", ErrPinnedBySegment, r, p.Seg.Range())
	}
	if p.swapped == nil {
		p.swapped = make(map[uint64]swapSlot)
	}
	n := 0
	for va := addr.PageBase(r.Start, addr.Page4K); va < r.End(); va += addr.PageSize4K {
		gpa, s, ok := p.PT.Translate(va)
		if !ok {
			continue
		}
		if s != addr.Page4K {
			return n, fmt.Errorf("guestos: swap of %v-mapped page %#x unsupported", s, va)
		}
		if err := p.PT.Unmap(va, addr.Page4K); err != nil {
			return n, err
		}
		if err := p.kernel.Mem.FreeFrame(physmem.AddrToFrame(gpa)); err != nil {
			return n, err
		}
		p.swapped[va] = swapSlot{}
		n++
	}
	return n, nil
}

// SwappedPages returns how many pages currently live on swap.
func (p *Process) SwappedPages() int { return len(p.swapped) }

// SwapIns returns how many faults were serviced from swap.
func (p *Process) SwapIns() uint64 { return p.swapIns }

// swapIn services a fault on a swapped-out page: allocate a frame,
// (notionally) read the contents back, and map it.
func (p *Process) swapIn(va uint64) error {
	page := addr.PageBase(va, addr.Page4K)
	f, err := p.kernel.Mem.AllocFrame()
	if err != nil {
		return fmt.Errorf("guestos: swap-in: %w", err)
	}
	if err := p.PT.Map(page, physmem.FrameToAddr(f), addr.Page4K); err != nil {
		return err
	}
	delete(p.swapped, page)
	p.swapIns++
	return nil
}
