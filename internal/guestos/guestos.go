// Package guestos models the guest operating system: process address
// spaces with demand paging, the primary-region abstraction that backs
// guest direct segments (§II.B), and the paper's software contributions
// on the guest side — the self-ballooning balloon driver and memory
// hotplug protocol (§IV, §VI.C, Figure 9) and I/O-gap reclamation.
//
// The kernel cooperates with a VMM through the VMMBackend interface;
// package vmm provides the production implementation, and tests use
// lightweight fakes.
package guestos

import (
	"errors"
	"fmt"

	"vdirect/internal/addr"
	"vdirect/internal/pagetable"
	"vdirect/internal/physmem"
	"vdirect/internal/segment"
)

// Errors surfaced by kernel operations.
var (
	ErrFragmented     = errors.New("guestos: guest physical memory too fragmented for a contiguous region")
	ErrNoPrimary      = errors.New("guestos: process has no primary region")
	ErrOutsideVA      = errors.New("guestos: fault outside any mapped region")
	ErrBackendMissing = errors.New("guestos: operation requires a VMM backend")
)

// VMMBackend is the hypervisor-side of the balloon/hotplug protocol the
// self-ballooning design uses (Figure 9 and §VI.C).
type VMMBackend interface {
	// Balloon hands pinned guest frames to the VMM, which reclaims
	// their host backing (and typically unmaps them from the nested
	// page table).
	Balloon(frames []uint64) error
	// HotplugAdd asks the VMM to back size bytes of new contiguous
	// guest physical address space. The VMM extends the guest physical
	// space (KVM: extends the high memory slot) and returns the new
	// range, which arrives offline; the kernel onlines it.
	HotplugAdd(size uint64) (addr.Range, error)
	// HotplugRemove tells the VMM the guest has unplugged the range so
	// its host backing can be reclaimed.
	HotplugRemove(r addr.Range) error
}

// Process is one guest process: a page table, a virtual address
// allocator, and optionally a primary region mapped by a guest segment.
type Process struct {
	Name string
	PT   *pagetable.Table
	// Seg holds the process's guest direct-segment registers
	// (BASE_G/LIMIT_G/OFFSET_G); disabled when no segment exists.
	Seg segment.Registers

	// primary is the primary region in guest virtual space.
	primary addr.Range
	// regions tracks mmapped ranges for fault validation.
	regions []addr.Range
	// nextVA is the bump allocator for new mappings.
	nextVA uint64

	kernel *Kernel
	// guards are armed guard pages (§V extension).
	guards []uint64
	// swapped tracks pages resident on the swap device.
	swapped map[uint64]swapSlot
	swapIns uint64
	// EmulateSegment, when set, reproduces the paper's prototype
	// strategy (§VI.B): the fault handler installs dynamically computed
	// PTEs for segment-covered addresses instead of relying on segment
	// hardware. Used to cross-validate hardware vs emulation.
	EmulateSegment bool
}

// Kernel is the guest OS: it owns guest physical memory and processes.
type Kernel struct {
	Mem     *physmem.Memory
	backend VMMBackend

	procs []*Process
	// ballooned tracks frames pinned by the balloon driver.
	ballooned []uint64
	// kernelReserve is the low memory kept below the I/O gap after
	// reclamation (the 256MB Linux needs to boot, §VI.C).
	kernelReserve addr.Range
}

// NewKernel boots a guest kernel over the given physical memory.
// backend may be nil for native (unvirtualized) kernels.
func NewKernel(mem *physmem.Memory, backend VMMBackend) *Kernel {
	return &Kernel{Mem: mem, backend: backend}
}

// SetBackend rebinds the kernel's VMM backend. Live migration hands a
// guest to a new VM object; the kernel keeps running over the same
// guest physical memory but must talk to the new hypervisor side.
func (k *Kernel) SetBackend(b VMMBackend) { k.backend = b }

// CreateProcess allocates a fresh address space.
func (k *Kernel) CreateProcess(name string) (*Process, error) {
	pt, err := pagetable.New(k.Mem)
	if err != nil {
		return nil, fmt.Errorf("guestos: creating %s: %w", name, err)
	}
	p := &Process{
		Name:   name,
		PT:     pt,
		nextVA: 0x4000_0000, // leave low VA for text/stack conventions
		kernel: k,
	}
	k.procs = append(k.procs, p)
	return p, nil
}

// Processes returns all live processes.
func (k *Kernel) Processes() []*Process { return k.procs }

// MMap reserves size bytes of virtual address space (rounded up to 4K)
// and returns its base. Pages are faulted in on demand.
func (p *Process) MMap(size uint64) (uint64, error) {
	size = addr.AlignUp(size, addr.PageSize4K)
	base := addr.AlignUp(p.nextVA, addr.PageSize2M)
	p.nextVA = base + size + addr.PageSize2M // guard gap
	r := addr.Range{Start: base, Size: size}
	p.regions = append(p.regions, r)
	return base, nil
}

// MMapAt registers a virtual region at a caller-chosen base (MAP_FIXED),
// used by the experiment runner to lay out workload data structures at
// the addresses their traces reference.
func (p *Process) MMapAt(r addr.Range) error {
	r.Size = addr.AlignUp(r.Size, addr.PageSize4K)
	for _, old := range p.regions {
		if old.Overlaps(r) {
			return fmt.Errorf("guestos: region %v overlaps existing %v", r, old)
		}
	}
	p.regions = append(p.regions, r)
	if end := r.End() + addr.PageSize2M; end > p.nextVA {
		p.nextVA = end
	}
	return nil
}

// Unmap removes the translation for every mapped page of the range and
// frees the backing frames. The caller is responsible for TLB
// invalidation on the MMU. The virtual region itself stays registered
// (malloc arenas recycle address space).
func (p *Process) Unmap(r addr.Range) error {
	for va := addr.PageBase(r.Start, addr.Page4K); va < r.End(); va += addr.PageSize4K {
		gpa, s, ok := p.PT.Translate(va)
		if !ok {
			continue
		}
		if s != addr.Page4K {
			return fmt.Errorf("guestos: unmap of %v-mapped page %#x unsupported", s, va)
		}
		if err := p.PT.Unmap(va, addr.Page4K); err != nil {
			return err
		}
		if err := p.kernel.Mem.FreeFrame(physmem.AddrToFrame(gpa)); err != nil {
			return err
		}
	}
	return nil
}

// MapRegion eagerly maps the whole region with pages of size s, backing
// it with size-aligned contiguous guest physical chunks. This is how
// big-memory applications "explicitly request 4KB, 2MB, or 1GB pages"
// (§VIII) and how THP-promoted regions end up laid out.
func (p *Process) MapRegion(r addr.Range, s addr.PageSize) error {
	if !addr.IsAligned(r.Start, s) {
		return fmt.Errorf("guestos: region base %#x not %v aligned", r.Start, s)
	}
	if s == addr.Page4K {
		return p.mapRegion4K(r)
	}
	chunkFrames := s.Bytes() >> addr.PageShift4K
	for va := r.Start; va < r.End(); va += s.Bytes() {
		if _, _, ok := p.PT.Translate(va); ok {
			continue
		}
		first, err := p.kernel.Mem.AllocContiguous(chunkFrames, chunkFrames)
		if err != nil {
			return fmt.Errorf("guestos: backing %v page at %#x: %w", s, va, err)
		}
		if err := p.PT.Map(va, physmem.FrameToAddr(first), s); err != nil {
			return err
		}
	}
	return nil
}

// mapRegion4K backs a 4K-grain region with batched frame runs and bulk
// page-table installs, frame-for-frame identical to the per-page loop:
// AllocRun hands out the same lowest-first frames that repeated
// single-frame AllocContiguous would, a run that ends at an allocated
// obstacle is simply continued by the next request past it, and
// already-mapped pages are skipped exactly as before. Batches stop at
// 2M boundaries with the first page of each subspan mapped alone, so
// page-table pages are allocated at exactly the point in the frame
// sequence the per-page loop allocated them — table placement (and so
// modeled PTE-cache behaviour) is preserved, not just leaf placement.
func (p *Process) mapRegion4K(r addr.Range) error {
	va, end := r.Start, r.End()
	for va < end {
		if _, _, ok := p.PT.Translate(va); ok {
			va += addr.PageSize4K
			continue
		}
		// The unmapped span to batch: within this 2M-aligned window, up
		// to the next already-mapped page.
		limit := (va &^ (addr.PageSize2M - 1)) + addr.PageSize2M
		if limit > end {
			limit = end
		}
		span := addr.PageSize4K
		for va+span < limit {
			if _, _, ok := p.PT.Translate(va + span); ok {
				break
			}
			span += addr.PageSize4K
		}
		// First page alone: its Map performs whatever table-page
		// allocations the descent needs, in sequence with its own frame.
		first, err := p.kernel.Mem.AllocContiguous(1, 1)
		if err != nil {
			return fmt.Errorf("guestos: backing %v page at %#x: %w", addr.Page4K, va, err)
		}
		if err := p.PT.Map(va, physmem.FrameToAddr(first), addr.Page4K); err != nil {
			return err
		}
		va += addr.PageSize4K
		// Remainder of the subspan in bulk: the tables exist now, so no
		// interleaved table-page allocation is being skipped.
		for need := (span - addr.PageSize4K) >> addr.PageShift4K; need > 0; {
			run, n, err := p.kernel.Mem.AllocRun(need)
			if err != nil {
				return fmt.Errorf("guestos: backing %v page at %#x: %w", addr.Page4K, va, err)
			}
			mapped, err := p.PT.MapRange4K(va, physmem.FrameToAddr(run), n)
			if err != nil {
				for f := run + mapped; f < run+n; f++ {
					p.kernel.Mem.FreeFrame(f)
				}
				return err
			}
			va += n << addr.PageShift4K
			need -= n
		}
	}
	return nil
}

// Regions returns the process's mapped virtual ranges.
func (p *Process) Regions() []addr.Range { return p.regions }

// PrimaryRegion returns the process's primary region (zero if none).
func (p *Process) PrimaryRegion() addr.Range { return p.primary }

// CreatePrimaryRegion reserves a contiguous virtual region of size
// bytes and attempts to back it with a contiguous guest physical range
// so a guest direct segment can map it. On fragmentation it returns
// ErrFragmented with the virtual region still created (paging works);
// the caller may self-balloon and retry BackPrimaryRegion.
func (p *Process) CreatePrimaryRegion(size uint64) (addr.Range, error) {
	size = addr.AlignUp(size, addr.PageSize4K)
	base := addr.AlignUp(p.nextVA, addr.PageSize1G)
	p.nextVA = base + size + addr.PageSize2M
	p.primary = addr.Range{Start: base, Size: size}
	p.regions = append(p.regions, p.primary)
	return p.primary, p.BackPrimaryRegion()
}

// CreatePrimaryRegionAt registers a primary region at a fixed virtual
// base (the experiment runner pins workload layouts) and attempts to
// back it, with the same ErrFragmented contract as CreatePrimaryRegion.
func (p *Process) CreatePrimaryRegionAt(r addr.Range) error {
	if err := p.MMapAt(r); err != nil {
		return err
	}
	p.primary = r
	return p.BackPrimaryRegion()
}

// BackPrimaryRegion (re)tries to allocate contiguous guest physical
// memory behind the primary region and program segment registers.
func (p *Process) BackPrimaryRegion() error {
	if p.primary.Empty() {
		return ErrNoPrimary
	}
	frames := p.primary.Size >> addr.PageShift4K
	first, err := p.kernel.Mem.AllocContiguous(frames, 1)
	if err != nil {
		return ErrFragmented
	}
	gpaBase := physmem.FrameToAddr(first)
	p.Seg = segment.NewRegisters(p.primary.Start, gpaBase, p.primary.Size)
	return nil
}

// HandleFault services a page fault at gva for the process, exactly as
// the modified Linux handler of §VI.B: faults inside a segment-mapped
// primary region get dynamically computed PTEs (emulation mode) or are
// a hard error (hardware mode — segment hardware should have translated
// them); other faults demand-allocate a frame.
func (p *Process) HandleFault(gva uint64) error {
	page := addr.PageBase(gva, addr.Page4K)
	if p.Seg.Enabled() && p.Seg.Contains(gva) {
		if !p.EmulateSegment {
			return fmt.Errorf("guestos: fault at %#x inside live guest segment %v", gva, p.Seg)
		}
		// §VI.B: compute the physical address from the segment offset
		// and install the PTE.
		gpa := addr.PageBase(p.Seg.Translate(gva), addr.Page4K)
		if err := p.kernel.Mem.AllocFrameAt(physmem.AddrToFrame(gpa)); err != nil &&
			!errors.Is(err, physmem.ErrDoubleAlloc) {
			return fmt.Errorf("guestos: emulated segment fault: %w", err)
		}
		return p.PT.Map(page, gpa, addr.Page4K)
	}
	if !p.inRegion(gva) {
		return ErrOutsideVA
	}
	if _, onSwap := p.swapped[page]; onSwap {
		return p.swapIn(gva)
	}
	f, err := p.kernel.Mem.AllocFrame()
	if err != nil {
		return fmt.Errorf("guestos: demand paging: %w", err)
	}
	return p.PT.Map(page, physmem.FrameToAddr(f), addr.Page4K)
}

func (p *Process) inRegion(gva uint64) bool {
	for _, r := range p.regions {
		if r.Contains(gva) {
			return true
		}
	}
	return false
}

// Prefault populates every page of the virtual range eagerly, as
// big-memory applications do with explicit huge-page requests or
// pre-touch loops. It drives HandleFault so both policies share code.
func (p *Process) Prefault(r addr.Range) error {
	for va := r.Start; va < r.End(); va += addr.PageSize4K {
		if _, _, ok := p.PT.Translate(va); ok {
			continue
		}
		if p.Seg.Enabled() && p.Seg.Contains(va) && !p.EmulateSegment {
			continue // segment hardware translates; nothing to install
		}
		if err := p.HandleFault(va); err != nil {
			return err
		}
	}
	return nil
}

// SelfBalloon implements the paper's self-ballooning (Figure 9): pin
// scattered free frames with the balloon driver, hand them to the VMM,
// and receive the same amount of fresh contiguous guest physical
// memory via hotplug. Returns the new contiguous range, onlined and
// ready to back a guest segment. It composes the two primitives a host
// policy engine also drives independently: BalloonOut and HotplugGrow.
func (k *Kernel) SelfBalloon(size uint64, pick func(n uint64) uint64) (addr.Range, error) {
	if _, err := k.BalloonOut(size, pick); err != nil {
		return addr.Range{}, err
	}
	return k.HotplugGrow(size)
}

// BalloonOut pins size bytes of free guest frames with the balloon
// driver and hands them to the VMM, which reclaims their host backing —
// the guest's side of a host-initiated balloon inflation (the
// "tug-of-war" primitive: the host squeezes this guest without giving
// anything back). The pinned frames stay allocated in guest physical
// memory so the guest never touches them. Returns the pinned frames.
func (k *Kernel) BalloonOut(size uint64, pick func(n uint64) uint64) ([]uint64, error) {
	if k.backend == nil {
		return nil, ErrBackendMissing
	}
	size = addr.AlignUp(size, addr.PageSize4K)
	need := size >> addr.PageShift4K
	if k.Mem.FreeFrames() < need {
		return nil, fmt.Errorf("guestos: balloon needs %d free frames, have %d",
			need, k.Mem.FreeFrames())
	}
	// The balloon driver asks the kernel for reclaimable pages and pins
	// them. The kernel hands back whatever scattered frames it has —
	// that is the point: they need not be contiguous.
	frames := make([]uint64, 0, need)
	for uint64(len(frames)) < need {
		f, err := k.Mem.AllocFrame()
		if err != nil {
			return nil, fmt.Errorf("guestos: balloon pinning: %w", err)
		}
		frames = append(frames, f)
	}
	_ = pick // reserved for randomized pinning policies
	if err := k.backend.Balloon(frames); err != nil {
		return nil, fmt.Errorf("guestos: balloon to VMM: %w", err)
	}
	k.ballooned = append(k.ballooned, frames...)
	return frames, nil
}

// HotplugGrow asks the VMM for size bytes of fresh contiguous guest
// physical memory via hotplug and onlines it — the guest's side of a
// host-initiated deflation/grant.
func (k *Kernel) HotplugGrow(size uint64) (addr.Range, error) {
	if k.backend == nil {
		return addr.Range{}, ErrBackendMissing
	}
	size = addr.AlignUp(size, addr.PageSize4K)
	r, err := k.backend.HotplugAdd(size)
	if err != nil {
		return addr.Range{}, fmt.Errorf("guestos: hotplug add: %w", err)
	}
	if err := k.Mem.Online(r); err != nil {
		return addr.Range{}, fmt.Errorf("guestos: onlining hotplugged range: %w", err)
	}
	return r, nil
}

// BalloonedFrames returns frames currently pinned by the balloon.
func (k *Kernel) BalloonedFrames() []uint64 { return k.ballooned }

// ReclaimIOGap implements §IV "Reclaiming I/O gap memory" using
// hot-unplug: remove all guest physical memory between keepBytes and
// the I/O gap, then extend memory above by the same amount. Linux
// needs only ~256MB low memory to boot (§VI.C), so keepBytes is
// typically 256<<20. Returns the new high range.
func (k *Kernel) ReclaimIOGap(keepBytes uint64) (addr.Range, error) {
	if k.backend == nil {
		return addr.Range{}, ErrBackendMissing
	}
	keepBytes = addr.AlignUp(keepBytes, addr.PageSize4K)
	if keepBytes >= addr.IOGapStart {
		return addr.Range{}, fmt.Errorf("guestos: keepBytes %#x leaves nothing to reclaim", keepBytes)
	}
	low := addr.Range{Start: keepBytes, Size: addr.IOGapStart - keepBytes}
	// Hot-unplug uses specific addresses (unlike ballooning, which takes
	// whatever the kernel picks) — that is why the paper uses it here.
	if err := k.Mem.Offline(low); err != nil {
		return addr.Range{}, fmt.Errorf("guestos: unplugging low memory: %w", err)
	}
	if err := k.backend.HotplugRemove(low); err != nil {
		return addr.Range{}, err
	}
	r, err := k.backend.HotplugAdd(low.Size)
	if err != nil {
		return addr.Range{}, err
	}
	if err := k.Mem.Online(r); err != nil {
		return addr.Range{}, err
	}
	k.kernelReserve = addr.Range{Start: 0, Size: keepBytes}
	return r, nil
}

// KernelReserve returns the low-memory range kept for the kernel after
// I/O-gap reclamation (zero before).
func (k *Kernel) KernelReserve() addr.Range { return k.kernelReserve }

// MarkBadPages places frames on the bad-page list and, when the process
// has a live segment covering them, registers them with the provided
// escape-filter insert function and remaps them through paging. It
// returns the remapped (gva → new gPA) pairs.
type BadPageRemap struct {
	GVA    uint64
	OldGPA uint64
	NewGPA uint64
}

// EscapeBadPages handles hard faults inside p's guest segment: each bad
// guest frame is marked, inserted into the escape filter via insert,
// and remapped through conventional paging to a healthy frame (§V).
func (p *Process) EscapeBadPages(badGPAs []uint64, insert func(pfn uint64)) ([]BadPageRemap, error) {
	if !p.Seg.Enabled() {
		return nil, ErrNoPrimary
	}
	var out []BadPageRemap
	for _, gpa := range badGPAs {
		gpa = addr.PageBase(gpa, addr.Page4K)
		if err := p.kernel.Mem.MarkBad(physmem.AddrToFrame(gpa)); err != nil {
			return out, err
		}
		if !p.Seg.TargetRange().Contains(gpa) {
			continue // outside the segment: ordinary bad-page handling
		}
		gva := gpa - p.Seg.Offset
		insert(gpa >> addr.PageShift4K)
		f, err := p.kernel.Mem.AllocFrame()
		if err != nil {
			return out, fmt.Errorf("guestos: replacement frame: %w", err)
		}
		newGPA := physmem.FrameToAddr(f)
		if err := p.PT.Map(addr.PageBase(gva, addr.Page4K), newGPA, addr.Page4K); err != nil {
			return out, fmt.Errorf("guestos: remapping escaped page: %w", err)
		}
		out = append(out, BadPageRemap{GVA: gva, OldGPA: gpa, NewGPA: newGPA})
	}
	return out, nil
}

// GuardPages implements the §V extension: the escape filter can carry
// "a limited number of pages with different protection, such as guard
// pages". Each gva page inside the segment is inserted into the filter
// via insert but deliberately NOT remapped, so hardware falls back to
// paging, finds no PTE, and faults — the guard trips. insert receives
// both the virtual and the translated page frame number because the
// guest-side filter (Direct Segment mode) is keyed by VA while the
// VMM-side filter (Dual/VMM Direct) is keyed by gPA.
func (p *Process) GuardPages(gvas []uint64, insert func(vaPFN, paPFN uint64)) error {
	if !p.Seg.Enabled() {
		return ErrNoPrimary
	}
	for _, gva := range gvas {
		if !p.Seg.Contains(gva) {
			return fmt.Errorf("guestos: guard page %#x outside the segment", gva)
		}
		pa := addr.PageBase(p.Seg.Translate(gva), addr.Page4K)
		insert(addr.PageBase(gva, addr.Page4K)>>addr.PageShift4K, pa>>addr.PageShift4K)
		p.guards = append(p.guards, addr.PageBase(gva, addr.Page4K))
	}
	return nil
}

// GuardPageHit reports whether a faulting address is a guard page the
// process armed, so the kernel can deliver the protection violation
// rather than demand-paging it.
func (p *Process) GuardPageHit(gva uint64) bool {
	page := addr.PageBase(gva, addr.Page4K)
	for _, g := range p.guards {
		if g == page {
			return true
		}
	}
	return false
}

// MapFalsePositive installs a paging mapping for a segment-covered page
// that the escape filter falsely reports (§V: "the VMM must create
// mappings for these pages as well"). Identity within the segment: the
// PTE targets exactly the address the segment would have produced.
func (p *Process) MapFalsePositive(gva uint64) error {
	if !p.Seg.Enabled() || !p.Seg.Contains(gva) {
		return ErrNoPrimary
	}
	page := addr.PageBase(gva, addr.Page4K)
	gpa := addr.PageBase(p.Seg.Translate(gva), addr.Page4K)
	err := p.PT.Map(page, gpa, addr.Page4K)
	if errors.Is(err, pagetable.ErrOverlap) {
		return nil // already mapped
	}
	return err
}
